package schedule

import (
	"errors"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

func mustTiling(t *testing.T, ti *prototile.Tile) *tiling.LatticeTiling {
	t.Helper()
	lt, ok := tiling.FindLatticeTiling(ti)
	if !ok {
		t.Fatalf("no lattice tiling for %s", ti.Name())
	}
	return lt
}

func TestTheorem1CollisionFree(t *testing.T) {
	// The headline result: for every exact prototile in the catalog, the
	// Theorem 1 schedule is collision-free with exactly |N| slots.
	tiles := []*prototile.Tile{
		prototile.Directional(), // Figure 3's 8-slot schedule
		prototile.Cross(2, 1),
		prototile.ChebyshevBall(2, 1),
		prototile.MustTetromino("S"),
		prototile.MustTetromino("T"),
		prototile.LTromino(),
	}
	for _, ti := range tiles {
		lt := mustTiling(t, ti)
		s := FromLatticeTiling(lt)
		if s.Slots() != ti.Size() {
			t.Errorf("%s: slots = %d, want |N| = %d", ti.Name(), s.Slots(), ti.Size())
		}
		dep := s.Deployment()
		if err := VerifyCollisionFree(s, dep, lattice.CenteredWindow(2, 6)); err != nil {
			t.Errorf("%s: %v", ti.Name(), err)
		}
		if s.LowerBound() != ti.Size() {
			t.Errorf("%s: lower bound = %d, want %d", ti.Name(), s.LowerBound(), ti.Size())
		}
	}
}

func TestTheorem1SlotShiftProperty(t *testing.T) {
	// Figure 3's observation: the sensors broadcasting in any fixed slot
	// k are exactly n_k + T, so their neighborhoods tile the lattice —
	// equivalently, the slot-k broadcasters are one coset of T.
	ti := prototile.Directional()
	lt := mustTiling(t, ti)
	s := FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 8)
	byslot := make(map[int][]lattice.Point)
	for _, p := range w.Points() {
		k, err := s.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		byslot[k] = append(byslot[k], p)
	}
	if len(byslot) != 8 {
		t.Fatalf("window uses %d slots, want 8", len(byslot))
	}
	pts := ti.Points()
	for k, sensors := range byslot {
		for _, p := range sensors {
			tr := p.Sub(pts[k])
			in, err := lt.InTranslateSet(tr)
			if err != nil {
				t.Fatalf("InTranslateSet: %v", err)
			}
			if !in {
				t.Fatalf("slot-%d sensor %v is not n_k + T", k, p)
			}
		}
	}
}

func TestPlainTDMACollisionFree(t *testing.T) {
	w := lattice.CenteredWindow(2, 2)
	s := PlainTDMA(w)
	if s.Slots() != w.Size() {
		t.Errorf("TDMA slots = %d, want %d", s.Slots(), w.Size())
	}
	dep := NewHomogeneous(prototile.ChebyshevBall(2, 1))
	if err := VerifyCollisionFree(s, dep, w); err != nil {
		t.Errorf("plain TDMA not collision-free: %v", err)
	}
}

func TestVerifyDetectsCollision(t *testing.T) {
	// All-same-slot schedule must produce a witness for any nontrivial
	// neighborhood.
	w := lattice.CenteredWindow(2, 2)
	pts := w.Points()
	assign := make([]int, len(pts))
	s, err := NewMapSchedule(1, pts, assign)
	if err != nil {
		t.Fatalf("NewMapSchedule: %v", err)
	}
	dep := NewHomogeneous(prototile.Cross(2, 1))
	err = VerifyCollisionFree(s, dep, w)
	if err == nil {
		t.Fatal("collision not detected")
	}
	var cw CollisionWitness
	if !errors.As(err, &cw) {
		t.Fatalf("error is %T, want CollisionWitness", err)
	}
	if cw.Slot != 0 {
		t.Errorf("witness slot = %d, want 0", cw.Slot)
	}
	if !Conflict(dep, cw.P, cw.Q) {
		t.Error("witness pair does not actually conflict")
	}
}

func TestVerifyRejectsUnknownPoints(t *testing.T) {
	s, _ := NewMapSchedule(1, nil, nil)
	dep := NewHomogeneous(prototile.Cross(2, 1))
	if err := VerifyCollisionFree(s, dep, lattice.CenteredWindow(2, 1)); err == nil {
		t.Error("schedule with missing points accepted")
	}
}

func TestVerifyDimensionMismatch(t *testing.T) {
	lt := mustTiling(t, prototile.Cross(2, 1))
	s := FromLatticeTiling(lt)
	if err := VerifyCollisionFree(s, s.Deployment(), lattice.CenteredWindow(3, 1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMapScheduleValidation(t *testing.T) {
	if _, err := NewMapSchedule(0, nil, nil); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := NewMapSchedule(2, []lattice.Point{lattice.Pt(0, 0)}, []int{5}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := NewMapSchedule(2, []lattice.Point{lattice.Pt(0, 0)}, []int{1, 0}); err == nil {
		t.Error("mismatched point/slot lengths accepted")
	}
	if _, err := NewMapSchedule(2, []lattice.Point{lattice.Pt(0, 0), lattice.Pt(0, 0)}, []int{0, 1}); err == nil {
		t.Error("duplicate point accepted")
	}
	s, err := NewMapSchedule(2, []lattice.Point{lattice.Pt(0, 0)}, []int{1})
	if err != nil {
		t.Fatalf("NewMapSchedule: %v", err)
	}
	if _, err := s.SlotOf(lattice.Pt(9, 9)); err == nil {
		t.Error("unknown point accepted")
	}
	k, err := s.SlotOf(lattice.Pt(0, 0))
	if err != nil || k != 1 {
		t.Errorf("SlotOf = %d, %v", k, err)
	}
}

func TestConflictSymmetricAndSelf(t *testing.T) {
	dep := NewHomogeneous(prototile.Cross(2, 1))
	p, q := lattice.Pt(0, 0), lattice.Pt(1, 1)
	if Conflict(dep, p, q) != Conflict(dep, q, p) {
		t.Error("Conflict not symmetric")
	}
	if !Conflict(dep, p, p) {
		t.Error("point should conflict with itself")
	}
	far := lattice.Pt(10, 10)
	if Conflict(dep, p, far) {
		t.Error("distant points conflict")
	}
}

func TestHomogeneousReach(t *testing.T) {
	if r := NewHomogeneous(prototile.ChebyshevBall(2, 2)).Reach(); r != 2 {
		t.Errorf("Reach = %d, want 2", r)
	}
	if r := NewHomogeneous(prototile.Directional()).Reach(); r != 3 {
		t.Errorf("Reach = %d, want 3 (2x4 block)", r)
	}
}

func TestSlotHistogram(t *testing.T) {
	lt := mustTiling(t, prototile.MustTetromino("O"))
	s := FromLatticeTiling(lt)
	w, err := lattice.BoxWindow(4, 4)
	if err != nil {
		t.Fatalf("BoxWindow: %v", err)
	}
	hist, err := SlotHistogram(s, w)
	if err != nil {
		t.Fatalf("SlotHistogram: %v", err)
	}
	// A 4x4 box aligned with a 2x2 tiling gives perfectly fair slots.
	for k, c := range hist {
		if c != 4 {
			t.Errorf("slot %d has %d sensors, want 4", k, c)
		}
	}
}
