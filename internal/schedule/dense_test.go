package schedule

import (
	"fmt"
	"math/rand"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// TestMapScheduleMatchesStringMapSemantics drives the dense MapSchedule
// against a reference string-keyed map (the pre-dense implementation) on
// random assignments, including points outside the assigned region.
func TestMapScheduleMatchesStringMapSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(3)
		slots := 1 + rng.Intn(5)
		// Scattered distinct points, not necessarily a full box. Keep the
		// target below the 9 distinct coordinates a 1-D draw can produce.
		want := 12
		if dim == 1 {
			want = 6
		}
		ref := make(map[string]int)
		var pts []lattice.Point
		var assign []int
		for len(pts) < want {
			p := make(lattice.Point, dim)
			for i := range p {
				p[i] = rng.Intn(9) - 4
			}
			if _, dup := ref[p.Key()]; dup {
				continue
			}
			s := rng.Intn(slots)
			ref[p.Key()] = s
			pts = append(pts, p)
			assign = append(assign, s)
		}
		m, err := NewMapSchedule(slots, pts, assign)
		if err != nil {
			t.Fatalf("NewMapSchedule: %v", err)
		}
		if m.Slots() != slots {
			t.Fatalf("Slots = %d, want %d", m.Slots(), slots)
		}
		// Probe a box covering the assignment plus a margin outside it.
		probe := lattice.CenteredWindow(dim, 6)
		probe.Each(func(p lattice.Point) bool {
			want, known := ref[p.Key()]
			got, err := m.SlotOf(p)
			if known {
				if err != nil || got != want {
					t.Fatalf("SlotOf(%v) = %d, %v, want %d, nil", p, got, err, want)
				}
			} else if err == nil {
				t.Fatalf("SlotOf(%v) = %d for an unassigned point, want error", p, got)
			}
			return true
		})
		// Wrong-dimension points are errors, as before.
		if _, err := m.SlotOf(lattice.Origin(dim + 1)); err == nil {
			t.Fatal("SlotOf accepted a wrong-dimension point")
		}
	}
}

// TestRestrictMatchesSource checks the dense restriction agrees with the
// source schedule on every window point and rejects points outside.
func TestRestrictMatchesSource(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 4)
	ms, err := Restrict(s, w)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	w.Each(func(p lattice.Point) bool {
		want, _ := s.SlotOf(p)
		got, err := ms.SlotOf(p)
		if err != nil || got != want {
			t.Fatalf("restricted SlotOf(%v) = %d, %v, want %d", p, got, err, want)
		}
		return true
	})
	if _, err := ms.SlotOf(lattice.Pt(99, 99)); err == nil {
		t.Error("restriction answered outside its window")
	}
}

// TestTheorem1SlotOfZeroAllocs pins the paper's O(1) claim in allocation
// terms: steady-state slot assignment must not touch the heap.
func TestTheorem1SlotOfZeroAllocs(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := FromLatticeTiling(lt)
	p := lattice.Pt(123, -456)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.SlotOf(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Theorem1.SlotOf allocates %.1f times per call, want 0", allocs)
	}
}

// TestTheorem2SlotOfMatchesPlacementScan compares the precomputed
// wrapped-cell table against the original placement-scanning algorithm.
func TestTheorem2SlotOfMatchesPlacementScan(t *testing.T) {
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s, z},
		tiling.SolveOptions{MaxSolutions: 2, Accept: func(c []int) bool { return c[1] > 0 }})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v", err)
	}
	for _, tt := range sols {
		th, err := FromTorusTiling(tt)
		if err != nil {
			t.Fatalf("FromTorusTiling: %v", err)
		}
		union := th.Union()
		index := make(map[string]int, len(union))
		for i, n := range union {
			index[n.Key()] = i
		}
		// The original algorithm: locate the owning placement, wrap the
		// offset difference, scan the tile for the congruent element.
		reference := func(p lattice.Point) (int, error) {
			pl, err := tt.OwnerOf(p)
			if err != nil {
				return 0, err
			}
			n := tt.Wrap(p.Sub(pl.Offset))
			tile := tt.Tiles()[pl.TileIndex]
			for _, cand := range tile.Points() {
				if tt.Wrap(cand).Equal(n) {
					return index[cand.Key()], nil
				}
			}
			return 0, fmt.Errorf("no congruent tile element for %v", p)
		}
		w := lattice.CenteredWindow(2, 6)
		w.Each(func(p lattice.Point) bool {
			want, err := reference(p)
			if err != nil {
				t.Fatalf("reference(%v): %v", p, err)
			}
			got, err := th.SlotOf(p)
			if err != nil || got != want {
				t.Fatalf("Theorem2.SlotOf(%v) = %d, %v, want %d", p, got, err, want)
			}
			return true
		})
	}
}
