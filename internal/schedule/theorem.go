package schedule

import (
	"fmt"
	"sort"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// Theorem1 is the schedule of the paper's Theorem 1: given a tiling T of
// the lattice with neighborhoods N = {n_1..n_m}, the sensors at n_k + T
// broadcast in slot k. It uses m = |N| slots, is collision-free, and is
// optimal (no collision-free periodic schedule uses fewer slots).
type Theorem1 struct {
	lt *tiling.LatticeTiling
}

// FromLatticeTiling builds the Theorem 1 schedule.
func FromLatticeTiling(lt *tiling.LatticeTiling) *Theorem1 {
	return &Theorem1{lt: lt}
}

// Tiling returns the underlying tiling.
func (s *Theorem1) Tiling() *tiling.LatticeTiling { return s.lt }

// Slots returns |N|.
func (s *Theorem1) Slots() int { return s.lt.Tile().Size() }

// SlotOf returns the coset index of p: the k with p ∈ n_k + T.
func (s *Theorem1) SlotOf(p lattice.Point) (int, error) {
	return s.lt.CosetIndex(p)
}

// Deployment returns the homogeneous deployment this schedule serves.
func (s *Theorem1) Deployment() *Homogeneous {
	return NewHomogeneous(s.lt.Tile())
}

// LowerBound returns the paper's optimality bound: any collision-free
// periodic schedule for the homogeneous deployment with prototile N needs
// at least |N| slots, because for any n', n” ∈ N the point n' + n” lies
// in both (n' + N) and (n” + N) — the sensors at N form a conflict
// clique.
func (s *Theorem1) LowerBound() int { return s.lt.Tile().Size() }

// CosetTiling abstracts the tilings that induce a Theorem 1 schedule: any
// structure assigning every lattice point the index of the unique tile
// element covering it (both tiling.LatticeTiling and
// tiling.PeriodicTiling qualify).
type CosetTiling interface {
	Tile() *prototile.Tile
	CosetIndex(p lattice.Point) (int, error)
}

// CosetSchedule is the Theorem 1 schedule over any CosetTiling — in
// particular over generalized periodic tilings of clusters that admit no
// lattice tiling (e.g. {0, 2} ⊂ Z with T = {0, 1} + 4Z).
type CosetSchedule struct {
	ct CosetTiling
}

// FromCosetTiling wraps a coset tiling as a schedule.
func FromCosetTiling(ct CosetTiling) *CosetSchedule { return &CosetSchedule{ct: ct} }

// Slots returns |N|.
func (s *CosetSchedule) Slots() int { return s.ct.Tile().Size() }

// SlotOf returns the coset index of p.
func (s *CosetSchedule) SlotOf(p lattice.Point) (int, error) { return s.ct.CosetIndex(p) }

// Deployment returns the homogeneous deployment of the tiling's
// prototile.
func (s *CosetSchedule) Deployment() *Homogeneous { return NewHomogeneous(s.ct.Tile()) }

// Theorem2 is the schedule of the paper's Theorem 2 for multi-prototile
// tilings under deployment D1: with N = ∪_k N_k = {n_1..n_m}, the sensors
// at n_k + T_ℓ broadcast in slot k whenever n_k ∈ N_ℓ. For respectable
// tilings it uses m = |N_1| slots and is optimal.
type Theorem2 struct {
	tt    *tiling.TorusTiling
	union []lattice.Point
	dims  []int
	// cellSlot maps each wrapped torus cell (by TorusTiling.CellIndex) to
	// the union index of the tile element covering it, precomputed once so
	// SlotOf is a single table read.
	cellSlot []int32
}

// FromTorusTiling builds the Theorem 2 schedule over a torus tiling. The
// union N = ∪ N_k is enumerated in lexicographic order; slot k belongs to
// union element n_k. The wrapped-cell→union-slot table is precomputed
// here, making per-point slot assignment allocation-free.
func FromTorusTiling(tt *tiling.TorusTiling) (*Theorem2, error) {
	u := lattice.NewSet()
	tiles := tt.Tiles()
	for _, t := range tiles {
		for _, n := range t.Points() {
			u.Add(n)
		}
	}
	union := u.Points()
	// union is sorted lexicographically; locate elements by binary search.
	unionIndex := func(n lattice.Point) int {
		i := sort.Search(len(union), func(i int) bool { return !union[i].Less(n) })
		if i < len(union) && union[i].Equal(n) {
			return i
		}
		return -1
	}
	s := &Theorem2{tt: tt, union: union, dims: tt.Dims(), cellSlot: make([]int32, tt.Cells())}
	for i := range s.cellSlot {
		s.cellSlot[i] = -1
	}
	buf := make(lattice.Point, 0, len(s.dims))
	for _, pl := range tt.Placements() {
		for _, n := range tiles[pl.TileIndex].Points() {
			k := unionIndex(n)
			if k < 0 {
				return nil, fmt.Errorf("%w: union index missing %v", ErrSchedule, n)
			}
			buf = pl.Offset.AddInto(n, buf[:0])
			ci, ok := tt.CellIndex(buf)
			if !ok || s.cellSlot[ci] >= 0 {
				return nil, fmt.Errorf("%w: cell %v multiply covered (invariant broken)", ErrSchedule, buf)
			}
			s.cellSlot[ci] = int32(k)
		}
	}
	return s, nil
}

// Tiling returns the underlying torus tiling.
func (s *Theorem2) Tiling() *tiling.TorusTiling { return s.tt }

// Union returns the enumerated union neighborhood N = ∪ N_k.
func (s *Theorem2) Union() []lattice.Point {
	out := make([]lattice.Point, len(s.union))
	for i, p := range s.union {
		out[i] = p.Clone()
	}
	return out
}

// Slots returns |∪ N_k|; for respectable tilings this equals |N_1|.
func (s *Theorem2) Slots() int { return len(s.union) }

// SlotOf returns the union index of the tile element covering p: one
// wrapped-cell table read, precomputed in FromTorusTiling.
func (s *Theorem2) SlotOf(p lattice.Point) (int, error) {
	ci, ok := s.tt.CellIndex(p)
	if !ok {
		return 0, fmt.Errorf("%w: point dimension %d ≠ torus dimension %d",
			ErrSchedule, len(p), len(s.dims))
	}
	return int(s.cellSlot[ci]), nil
}

// Deployment returns the D1 deployment this schedule serves.
func (s *Theorem2) Deployment() *D1 { return NewD1(s.tt) }

// LowerBound returns the Theorem 2 optimality bound for respectable
// tilings: |N_1| slots are necessary. For non-respectable tilings the
// bound degrades to the largest prototile size (each tile is still a
// conflict clique), and the true optimum depends on the tiling —
// Section 4 / Figure 5.
func (s *Theorem2) LowerBound() int {
	max := 0
	for _, t := range s.tt.Tiles() {
		if t.Size() > max {
			max = t.Size()
		}
	}
	return max
}
