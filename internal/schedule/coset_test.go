package schedule

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

func TestCosetScheduleOverPeriodicTiling(t *testing.T) {
	// The Theorem 1 schedule generalizes to non-lattice periodic
	// tilings: the gap cluster {0, 2} gets a 2-slot collision-free
	// schedule via T = {0, 1} + 4Z.
	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	pt, ok := tiling.FindPeriodicTiling(gap, 3)
	if !ok {
		t.Fatal("no periodic tiling for the gap cluster")
	}
	s := FromCosetTiling(pt)
	if s.Slots() != 2 {
		t.Errorf("slots = %d, want 2", s.Slots())
	}
	if err := VerifyCollisionFree(s, s.Deployment(), lattice.CenteredWindow(1, 15)); err != nil {
		t.Errorf("periodic-tiling schedule collides: %v", err)
	}
}

func TestCosetScheduleMatchesTheorem1(t *testing.T) {
	// Over a plain lattice tiling, FromCosetTiling and FromLatticeTiling
	// agree slot for slot.
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling for cross")
	}
	a := FromLatticeTiling(lt)
	b := FromCosetTiling(lt)
	if a.Slots() != b.Slots() {
		t.Fatalf("slot counts differ: %d vs %d", a.Slots(), b.Slots())
	}
	for _, p := range lattice.CenteredWindow(2, 4).Points() {
		ka, err := a.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		kb, err := b.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		if ka != kb {
			t.Fatalf("slots differ at %v: %d vs %d", p, ka, kb)
		}
	}
}

func TestCosetScheduleOptimalFor2DGap(t *testing.T) {
	// {(0,0), (2,0)}: 2 slots, collision-free in 2 dimensions.
	gap := prototile.MustNew("gap2", lattice.Pt(0, 0), lattice.Pt(2, 0))
	pt, ok := tiling.FindPeriodicTiling(gap, 2)
	if !ok {
		t.Fatal("no periodic tiling")
	}
	s := FromCosetTiling(pt)
	if s.Slots() != 2 {
		t.Errorf("slots = %d, want 2", s.Slots())
	}
	if err := VerifyCollisionFree(s, s.Deployment(), lattice.CenteredWindow(2, 6)); err != nil {
		t.Errorf("schedule collides: %v", err)
	}
}
