// Package schedule implements the paper's deterministic periodic broadcast
// schedules and their verification.
//
// A schedule assigns every sensor position a slot k ∈ {0..m-1}; the sensor
// at p may broadcast at time t exactly when t ≡ SlotOf(p) (mod Slots()).
// A schedule is collision-free when no two same-slot sensors have
// intersecting interference neighborhoods (p + N(p)) — the paper's
// condition preceding Theorem 1. Schedules constructed from tilings
// (Theorem 1, Theorem 2) are optimal: they use exactly |N| slots, and no
// collision-free periodic schedule can use fewer.
package schedule

import (
	"errors"
	"fmt"
	"math"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// ErrSchedule indicates an invalid schedule construction or verification
// failure.
var ErrSchedule = errors.New("schedule: invalid schedule")

// Schedule assigns broadcast slots to lattice points.
type Schedule interface {
	// Slots returns the period m of the schedule.
	Slots() int
	// SlotOf returns the 0-based slot of the sensor at p.
	SlotOf(p lattice.Point) (int, error)
}

// Deployment describes each sensor's interference neighborhood — the
// paper's deployment rule (homogeneous before Theorem 1, D1 in Section 4).
type Deployment interface {
	// NeighborhoodOf returns the absolute positions affected by a
	// broadcast of the sensor at p (the set p + N(p), which includes p).
	NeighborhoodOf(p lattice.Point) []lattice.Point
	// Reach bounds the Chebyshev distance from p to any point of its
	// neighborhood; used to limit conflict searches.
	Reach() int
	// Dim returns the lattice dimension.
	Dim() int
}

// Homogeneous is the constant-prototile deployment of Sections 1–3: every
// sensor at t affects t + N. The tile's point slice and reach are cached
// at construction so per-call work is a single translate.
type Homogeneous struct {
	tile  *prototile.Tile
	pts   []lattice.Point
	reach int
}

// NewHomogeneous builds the homogeneous deployment for prototile N.
func NewHomogeneous(t *prototile.Tile) *Homogeneous {
	h := &Homogeneous{tile: t, pts: t.Points()}
	for _, n := range h.pts {
		if c := n.ChebyshevNorm(); c > h.reach {
			h.reach = c
		}
	}
	return h
}

// Tile returns the prototile.
func (h *Homogeneous) Tile() *prototile.Tile { return h.tile }

// NeighborhoodOf returns p + N. The returned points share one backing
// array (two allocations per call, regardless of |N|).
func (h *Homogeneous) NeighborhoodOf(p lattice.Point) []lattice.Point {
	return translateAll(p, h.pts)
}

// Reach returns the maximum coordinate magnitude within N, cached at
// construction.
func (h *Homogeneous) Reach() int { return h.reach }

// translateAll returns {p + n : n ∈ pts}, packing all coordinates into a
// single backing array.
func translateAll(p lattice.Point, pts []lattice.Point) []lattice.Point {
	flat := make(lattice.Point, 0, len(pts)*len(p))
	out := make([]lattice.Point, len(pts))
	for i, n := range pts {
		start := len(flat)
		flat = p.AddInto(n, flat)
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}

// Dim returns the prototile dimension.
func (h *Homogeneous) Dim() int { return h.tile.Dim() }

// D1 is the paper's Section 4 deployment: the sensor at p has the
// neighborhood type of the tile covering p in a (possibly multi-prototile)
// torus tiling, extended periodically to the whole lattice. Per-tile point
// slices and the global reach are cached at construction.
type D1 struct {
	tt      *tiling.TorusTiling
	tilePts [][]lattice.Point
	reach   int
}

// NewD1 builds the D1 deployment over a torus tiling.
func NewD1(tt *tiling.TorusTiling) *D1 {
	d := &D1{tt: tt}
	tiles := tt.Tiles()
	d.tilePts = make([][]lattice.Point, len(tiles))
	for i, t := range tiles {
		d.tilePts[i] = t.Points()
		for _, n := range d.tilePts[i] {
			if c := n.ChebyshevNorm(); c > d.reach {
				d.reach = c
			}
		}
	}
	return d
}

// Tiling returns the underlying torus tiling.
func (d *D1) Tiling() *tiling.TorusTiling { return d.tt }

// NeighborhoodOf returns p + N_k where N_k is the prototile of the
// placement covering p.
func (d *D1) NeighborhoodOf(p lattice.Point) []lattice.Point {
	pl, err := d.tt.OwnerOf(p)
	if err != nil {
		// Tiling invariants guarantee every cell is owned; an error here
		// means a dimension mismatch, which is a programming error.
		panic(fmt.Sprintf("schedule: D1 neighborhood of %v: %v", p, err))
	}
	return translateAll(p, d.tilePts[pl.TileIndex])
}

// Reach returns the maximum coordinate magnitude over all prototiles,
// cached at construction.
func (d *D1) Reach() int { return d.reach }

// Dim returns the torus dimension.
func (d *D1) Dim() int { return len(d.tt.Dims()) }

// MapSchedule is an explicit finite schedule: a dense slot table over the
// bounding window of its assigned points, indexed by Window.IndexOf so a
// lookup is pure integer arithmetic (no hashing, no allocation). It backs
// the baseline schedules (plain TDMA, graph-coloring heuristics) so that
// every scheduler flows through the same verifier and simulator.
type MapSchedule struct {
	slots int
	w     lattice.Window
	table []int32 // dense over w, -1 = unassigned
}

// NewMapSchedule builds a schedule from parallel point/slot slices. Slots
// must be positive, every assigned slot must lie in [0, slots), points
// must share one dimension and be distinct. The table is dense over the
// points' bounding window, so wildly scattered points trade memory for
// O(1) lookups; the schedules built here are window-shaped already.
func NewMapSchedule(slots int, pts []lattice.Point, assign []int) (*MapSchedule, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("%w: %d slots", ErrSchedule, slots)
	}
	if slots > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d slots overflow the dense table", ErrSchedule, slots)
	}
	if len(pts) != len(assign) {
		return nil, fmt.Errorf("%w: %d points but %d slot assignments", ErrSchedule, len(pts), len(assign))
	}
	m := &MapSchedule{slots: slots}
	if len(pts) == 0 {
		return m, nil
	}
	dim := pts[0].Dim()
	lo := pts[0].Clone()
	hi := pts[0].Clone()
	for _, p := range pts[1:] {
		if p.Dim() != dim {
			return nil, fmt.Errorf("%w: mixed point dimensions %d and %d", ErrSchedule, dim, p.Dim())
		}
		for i, c := range p {
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	var err error
	m.w, err = lattice.NewWindow(lo, hi)
	if err != nil {
		return nil, err
	}
	size, err := m.w.SizeChecked()
	if err != nil {
		return nil, fmt.Errorf("%w: bounding window of assignment too large: %v", ErrSchedule, err)
	}
	m.table = make([]int32, size)
	for i := range m.table {
		m.table[i] = -1
	}
	for i, p := range pts {
		s := assign[i]
		if s < 0 || s >= slots {
			return nil, fmt.Errorf("%w: slot %d out of [0, %d)", ErrSchedule, s, slots)
		}
		j, ok := m.w.IndexOf(p)
		if !ok {
			return nil, fmt.Errorf("%w: point %v has dimension %d, want %d", ErrSchedule, p, p.Dim(), m.w.Dim())
		}
		if m.table[j] >= 0 {
			return nil, fmt.Errorf("%w: point %v assigned twice", ErrSchedule, p)
		}
		m.table[j] = int32(s)
	}
	return m, nil
}

// newWindowSchedule builds a fully-assigned dense schedule directly over a
// window; table[i] is the slot of w.PointAt(i), already validated by the
// caller.
func newWindowSchedule(slots int, w lattice.Window, table []int32) *MapSchedule {
	return &MapSchedule{slots: slots, w: w, table: table}
}

// Slots returns the period.
func (m *MapSchedule) Slots() int { return m.slots }

// SlotOf looks up the point's slot; unknown points are an error.
func (m *MapSchedule) SlotOf(p lattice.Point) (int, error) {
	if i, ok := m.w.IndexOf(p); ok && len(m.table) > 0 {
		if s := m.table[i]; s >= 0 {
			return int(s), nil
		}
	}
	return 0, fmt.Errorf("%w: no slot for %v", ErrSchedule, p)
}

// PlainTDMA returns the classical round-robin schedule over a finite
// window: every sensor gets its own slot, m = |window|. Collision-free by
// construction and maximally wasteful — the paper's strawman baseline.
func PlainTDMA(w lattice.Window) *MapSchedule {
	size, err := w.SizeChecked()
	if err != nil || size > math.MaxInt32 {
		panic(fmt.Sprintf("schedule: PlainTDMA window too large: %v", err))
	}
	table := make([]int32, size)
	for i := range table {
		table[i] = int32(i)
	}
	return newWindowSchedule(size, w, table)
}
