// Package schedule implements the paper's deterministic periodic broadcast
// schedules and their verification.
//
// A schedule assigns every sensor position a slot k ∈ {0..m-1}; the sensor
// at p may broadcast at time t exactly when t ≡ SlotOf(p) (mod Slots()).
// A schedule is collision-free when no two same-slot sensors have
// intersecting interference neighborhoods (p + N(p)) — the paper's
// condition preceding Theorem 1. Schedules constructed from tilings
// (Theorem 1, Theorem 2) are optimal: they use exactly |N| slots, and no
// collision-free periodic schedule can use fewer.
package schedule

import (
	"errors"
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// ErrSchedule indicates an invalid schedule construction or verification
// failure.
var ErrSchedule = errors.New("schedule: invalid schedule")

// Schedule assigns broadcast slots to lattice points.
type Schedule interface {
	// Slots returns the period m of the schedule.
	Slots() int
	// SlotOf returns the 0-based slot of the sensor at p.
	SlotOf(p lattice.Point) (int, error)
}

// Deployment describes each sensor's interference neighborhood — the
// paper's deployment rule (homogeneous before Theorem 1, D1 in Section 4).
type Deployment interface {
	// NeighborhoodOf returns the absolute positions affected by a
	// broadcast of the sensor at p (the set p + N(p), which includes p).
	NeighborhoodOf(p lattice.Point) []lattice.Point
	// Reach bounds the Chebyshev distance from p to any point of its
	// neighborhood; used to limit conflict searches.
	Reach() int
	// Dim returns the lattice dimension.
	Dim() int
}

// Homogeneous is the constant-prototile deployment of Sections 1–3: every
// sensor at t affects t + N.
type Homogeneous struct {
	tile *prototile.Tile
}

// NewHomogeneous builds the homogeneous deployment for prototile N.
func NewHomogeneous(t *prototile.Tile) *Homogeneous { return &Homogeneous{tile: t} }

// Tile returns the prototile.
func (h *Homogeneous) Tile() *prototile.Tile { return h.tile }

// NeighborhoodOf returns p + N.
func (h *Homogeneous) NeighborhoodOf(p lattice.Point) []lattice.Point {
	pts := h.tile.Points()
	out := make([]lattice.Point, len(pts))
	for i, n := range pts {
		out[i] = p.Add(n)
	}
	return out
}

// Reach returns the maximum coordinate magnitude within N.
func (h *Homogeneous) Reach() int {
	r := 0
	for _, n := range h.tile.Points() {
		if c := n.ChebyshevNorm(); c > r {
			r = c
		}
	}
	return r
}

// Dim returns the prototile dimension.
func (h *Homogeneous) Dim() int { return h.tile.Dim() }

// D1 is the paper's Section 4 deployment: the sensor at p has the
// neighborhood type of the tile covering p in a (possibly multi-prototile)
// torus tiling, extended periodically to the whole lattice.
type D1 struct {
	tt *tiling.TorusTiling
}

// NewD1 builds the D1 deployment over a torus tiling.
func NewD1(tt *tiling.TorusTiling) *D1 { return &D1{tt: tt} }

// Tiling returns the underlying torus tiling.
func (d *D1) Tiling() *tiling.TorusTiling { return d.tt }

// NeighborhoodOf returns p + N_k where N_k is the prototile of the
// placement covering p.
func (d *D1) NeighborhoodOf(p lattice.Point) []lattice.Point {
	t, err := d.tt.TileAt(p)
	if err != nil {
		// Tiling invariants guarantee every cell is owned; an error here
		// means a dimension mismatch, which is a programming error.
		panic(fmt.Sprintf("schedule: D1 neighborhood of %v: %v", p, err))
	}
	pts := t.Points()
	out := make([]lattice.Point, len(pts))
	for i, n := range pts {
		out[i] = p.Add(n)
	}
	return out
}

// Reach returns the maximum coordinate magnitude over all prototiles.
func (d *D1) Reach() int {
	r := 0
	for _, t := range d.tt.Tiles() {
		for _, n := range t.Points() {
			if c := n.ChebyshevNorm(); c > r {
				r = c
			}
		}
	}
	return r
}

// Dim returns the torus dimension.
func (d *D1) Dim() int { return len(d.tt.Dims()) }

// MapSchedule is an explicit finite schedule: a slot table over a window
// of sensor positions. It backs the baseline schedules (plain TDMA,
// graph-coloring heuristics) so that every scheduler flows through the
// same verifier and simulator.
type MapSchedule struct {
	slots int
	table map[string]int
}

// NewMapSchedule builds a schedule from an explicit assignment. Slots must
// be positive and every assigned slot must lie in [0, slots).
func NewMapSchedule(slots int, assign map[string]int) (*MapSchedule, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("%w: %d slots", ErrSchedule, slots)
	}
	table := make(map[string]int, len(assign))
	for k, s := range assign {
		if s < 0 || s >= slots {
			return nil, fmt.Errorf("%w: slot %d out of [0, %d)", ErrSchedule, s, slots)
		}
		table[k] = s
	}
	return &MapSchedule{slots: slots, table: table}, nil
}

// Slots returns the period.
func (m *MapSchedule) Slots() int { return m.slots }

// SlotOf looks up the point's slot; unknown points are an error.
func (m *MapSchedule) SlotOf(p lattice.Point) (int, error) {
	s, ok := m.table[p.Key()]
	if !ok {
		return 0, fmt.Errorf("%w: no slot for %v", ErrSchedule, p)
	}
	return s, nil
}

// PlainTDMA returns the classical round-robin schedule over a finite
// window: every sensor gets its own slot, m = |window|. Collision-free by
// construction and maximally wasteful — the paper's strawman baseline.
func PlainTDMA(w lattice.Window) *MapSchedule {
	assign := make(map[string]int, w.Size())
	for i, p := range w.Points() {
		assign[p.Key()] = i
	}
	s, err := NewMapSchedule(w.Size(), assign)
	if err != nil {
		panic("schedule: PlainTDMA construction failed: " + err.Error())
	}
	return s
}
