package wsn

import (
	"fmt"
	"math/rand"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// SkewedScheduleMAC is a schedule MAC whose nodes suffer constant clock
// skew: with probability SkewProb a node's clock is off by ±1 slot
// (uniformly). The paper assumes "the sensors have access to the current
// time"; this protocol quantifies what that assumption buys — any skew
// reintroduces collisions into an otherwise provably collision-free
// schedule.
//
// Skews are drawn deterministically from the seed at construction, per
// node index, so runs are reproducible.
type SkewedScheduleMAC struct {
	name     string
	sched    schedule.Schedule
	skewProb float64
	seed     int64
	offsets  map[int]int64
}

// NewSkewedScheduleMAC wraps a schedule with per-node clock skew.
func NewSkewedScheduleMAC(name string, s schedule.Schedule, skewProb float64, seed int64) (*SkewedScheduleMAC, error) {
	if skewProb < 0 || skewProb > 1 {
		return nil, fmt.Errorf("%w: skew probability %v", ErrSim, skewProb)
	}
	return &SkewedScheduleMAC{
		name:     name,
		sched:    s,
		skewProb: skewProb,
		seed:     seed,
		offsets:  make(map[int]int64),
	}, nil
}

// Name returns the protocol label.
func (s *SkewedScheduleMAC) Name() string {
	return fmt.Sprintf("%s+skew(%.2f)", s.name, s.skewProb)
}

// offset returns the node's fixed clock error, drawing it on first use
// from a per-node deterministic stream.
func (s *SkewedScheduleMAC) offset(node int) int64 {
	if off, ok := s.offsets[node]; ok {
		return off
	}
	rng := rand.New(rand.NewSource(s.seed + int64(node)*7919))
	var off int64
	if rng.Float64() < s.skewProb {
		if rng.Float64() < 0.5 {
			off = -1
		} else {
			off = 1
		}
	}
	s.offsets[node] = off
	return off
}

// Transmit fires when the node's skewed clock reads its slot.
func (s *SkewedScheduleMAC) Transmit(node int, p lattice.Point, slot int64, _ *rand.Rand) bool {
	k, err := s.sched.SlotOf(p)
	if err != nil {
		panic(fmt.Sprintf("wsn: schedule has no slot for %v: %v", p, err))
	}
	m := int64(s.sched.Slots())
	local := slot + s.offset(node)
	return ((local%m)+m)%m == int64(k)
}

// Observe is a no-op.
func (s *SkewedScheduleMAC) Observe(int64, []bool, []bool) {}
