package wsn

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func TestFailuresKillNodes(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	m, err := Run(Config{
		Window:          lattice.CenteredWindow(2, 3),
		Deployment:      s.Deployment(),
		Protocol:        NewScheduleMAC("tiling", s),
		Traffic:         Saturated{},
		Slots:           400,
		Seed:            5,
		NodeFailureProb: 0.002,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.NodesFailed == 0 {
		t.Error("no nodes failed at rate 0.002 over 400 slots (suspicious)")
	}
	if m.NodesFailed >= m.Nodes {
		t.Error("every node failed (rate too high for the test)")
	}
}

func TestTilingScheduleSurvivesFailures(t *testing.T) {
	// Removing sensors cannot create collisions: condition T2 is closed
	// under taking subsets, so the tiling schedule needs no recomputation
	// as the network decays.
	lt, ok := tiling.FindLatticeTiling(prototile.ChebyshevBall(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	m, err := Run(Config{
		Window:          lattice.CenteredWindow(2, 4),
		Deployment:      s.Deployment(),
		Protocol:        NewScheduleMAC("tiling", s),
		Traffic:         Saturated{},
		Slots:           600,
		Seed:            6,
		NodeFailureProb: 0.003,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.NodesFailed == 0 {
		t.Fatal("no failures occurred; test vacuous")
	}
	if m.FailedTx != 0 {
		t.Errorf("failures induced %d failed transmissions, want 0", m.FailedTx)
	}
	if m.ReceiverCollisions != 0 {
		t.Errorf("failures induced %d receiver collisions, want 0", m.ReceiverCollisions)
	}
}

func TestDeadNodesStaySilent(t *testing.T) {
	// With certain immediate death, no one ever transmits.
	lt, _ := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	s := schedule.FromLatticeTiling(lt)
	m, err := Run(Config{
		Window:          lattice.CenteredWindow(2, 2),
		Deployment:      s.Deployment(),
		Protocol:        NewScheduleMAC("tiling", s),
		Traffic:         Saturated{},
		Slots:           50,
		Seed:            1,
		NodeFailureProb: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Transmissions != 0 {
		t.Errorf("dead network transmitted %d times", m.Transmissions)
	}
	if m.NodesFailed != m.Nodes {
		t.Errorf("NodesFailed = %d, want %d", m.NodesFailed, m.Nodes)
	}
}

func TestFailureProbValidation(t *testing.T) {
	lt, _ := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	s := schedule.FromLatticeTiling(lt)
	cfg := Config{
		Window:          lattice.CenteredWindow(2, 1),
		Deployment:      s.Deployment(),
		Protocol:        NewScheduleMAC("tiling", s),
		Traffic:         Saturated{},
		Slots:           10,
		NodeFailureProb: -0.5,
	}
	if _, err := Run(cfg); err == nil {
		t.Error("negative failure probability accepted")
	}
	cfg.NodeFailureProb = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("failure probability > 1 accepted")
	}
}
