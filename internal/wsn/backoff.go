package wsn

import (
	"fmt"
	"math/rand"

	"tilingsched/internal/lattice"
)

// BackoffALOHA is slotted ALOHA with binary exponential backoff: each
// failed transmission halves a node's transmit probability (doubling its
// expected backoff window) down to PMin; a success resets it to PMax.
// This is the classic self-stabilizing contention control that practical
// probabilistic MACs layer on top of plain ALOHA — the strongest
// probabilistic baseline in this repository.
type BackoffALOHA struct {
	PMax, PMin float64
	p          []float64
}

// NewBackoffALOHA validates the probability range.
func NewBackoffALOHA(pMax, pMin float64) (*BackoffALOHA, error) {
	if pMax <= 0 || pMax > 1 || pMin <= 0 || pMin > pMax {
		return nil, fmt.Errorf("%w: backoff range [%v, %v]", ErrSim, pMin, pMax)
	}
	return &BackoffALOHA{PMax: pMax, PMin: pMin}, nil
}

// Name returns "beb(pmax,pmin)".
func (b *BackoffALOHA) Name() string { return fmt.Sprintf("beb(%.2f,%.3f)", b.PMax, b.PMin) }

// Transmit fires with the node's current probability.
func (b *BackoffALOHA) Transmit(node int, _ lattice.Point, _ int64, rng *rand.Rand) bool {
	b.ensure(node)
	return rng.Float64() < b.p[node]
}

// Observe halves the probability of nodes that failed and resets nodes
// that succeeded.
func (b *BackoffALOHA) Observe(_ int64, transmitting, succeeded []bool) {
	b.ensure(len(transmitting) - 1)
	for i := range transmitting {
		if !transmitting[i] {
			continue
		}
		if succeeded[i] {
			b.p[i] = b.PMax
		} else {
			b.p[i] /= 2
			if b.p[i] < b.PMin {
				b.p[i] = b.PMin
			}
		}
	}
}

// ensure grows the per-node state to cover node indices seen so far.
func (b *BackoffALOHA) ensure(node int) {
	for len(b.p) <= node {
		b.p = append(b.p, b.PMax)
	}
}
