package wsn

import (
	"errors"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// TestChurnKeepsTilingCollisionFree scripts joins and leaves through a
// saturated run of the Theorem 1 schedule: condition T2 is closed under
// taking subsets, so whatever subset of sensors is up, no transmission
// may ever fail — the simulator-side witness of the dynamic-deployments
// claim.
func TestChurnKeepsTilingCollisionFree(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 3)
	churn := []ChurnEvent{
		{Slot: 10, P: lattice.Pt(0, 0), Up: false},
		{Slot: 10, P: lattice.Pt(1, 1), Up: false},
		{Slot: 25, P: lattice.Pt(0, 0), Up: true},
		{Slot: 40, P: lattice.Pt(-3, 2), Up: false},
		{Slot: 60, P: lattice.Pt(1, 1), Up: true},
		{Slot: 60, P: lattice.Pt(-3, 2), Up: true},
		{Slot: 5, P: lattice.Pt(2, 2), Up: true}, // already up: no-op
	}
	m, err := Run(Config{
		Window:     w,
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Saturated{},
		Slots:      120,
		Seed:       1,
		Churn:      churn,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.FailedTx != 0 || m.ReceiverCollisions != 0 {
		t.Fatalf("churned tiling schedule collided: failed=%d rc=%d", m.FailedTx, m.ReceiverCollisions)
	}
	if m.NodesLeft != 3 || m.NodesJoined != 3 {
		t.Fatalf("churn counts left=%d joined=%d, want 3/3", m.NodesLeft, m.NodesJoined)
	}
	if m.Transmissions == 0 {
		t.Fatal("no traffic")
	}

	// Baseline without churn transmits strictly more (down slots are
	// lost capacity).
	base, err := Run(Config{
		Window:     w,
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Saturated{},
		Slots:      120,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	if base.Transmissions <= m.Transmissions {
		t.Fatalf("churn did not reduce transmissions: %d vs %d", m.Transmissions, base.Transmissions)
	}
}

// TestChurnValidation rejects out-of-window and negative-slot events.
func TestChurnValidation(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	base := Config{
		Window:     lattice.CenteredWindow(2, 2),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Saturated{},
		Slots:      10,
	}
	bad := base
	bad.Churn = []ChurnEvent{{Slot: 1, P: lattice.Pt(99, 99), Up: false}}
	if _, err := Run(bad); !errors.Is(err, ErrSim) {
		t.Fatalf("out-of-window churn: err = %v", err)
	}
	bad = base
	bad.Churn = []ChurnEvent{{Slot: -1, P: lattice.Pt(0, 0), Up: false}}
	if _, err := Run(bad); !errors.Is(err, ErrSim) {
		t.Fatalf("negative-slot churn: err = %v", err)
	}
}
