package wsn

import (
	"fmt"
	"math/rand"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// Convergecast models the workload the paper's introduction motivates:
// sensors monitoring an area report readings hop by hop to a sink. Each
// node forwards packets to its parent on a BFS routing tree built over
// the communication graph (u can forward to v when v hears u, i.e.
// v ∈ u + N_u). Reception follows the paper's collision model; a hop
// succeeds when the parent is silent and the child is the only
// transmitter covering it. Under a tiling schedule every hop succeeds on
// the first try, giving a deterministic multi-hop latency bound.
type ConvergecastConfig struct {
	// Window is the deployment region.
	Window lattice.Window
	// Deployment supplies interference neighborhoods.
	Deployment schedule.Deployment
	// Protocol decides who transmits each slot.
	Protocol Protocol
	// Sink is the collection point (must lie in the window).
	Sink lattice.Point
	// SourceRate is each non-sink node's Bernoulli packet rate per slot.
	SourceRate float64
	// Slots is the simulation length.
	Slots int64
	// Seed feeds the deterministic random source.
	Seed int64
	// QueueCap bounds per-node queues (0 = unbounded).
	QueueCap int
}

// ConvergecastMetrics aggregates a convergecast run.
type ConvergecastMetrics struct {
	Slots           int64
	Nodes           int
	Generated       int64
	DeliveredToSink int64
	Dropped         int64
	Forwards        int64 // per-hop transmissions (energy proxy)
	FailedForwards  int64
	TotalE2ELatency int64 // generation → sink arrival, summed
	TreeDepth       int   // maximum hops to the sink
	Unreachable     int   // nodes with no route to the sink
}

// MeanE2ELatency is the average slots from generation to sink delivery.
func (m ConvergecastMetrics) MeanE2ELatency() float64 {
	if m.DeliveredToSink == 0 {
		return 0
	}
	return float64(m.TotalE2ELatency) / float64(m.DeliveredToSink)
}

// ForwardsPerDelivered is hop transmissions per packet that reached the
// sink (tree depth ≈ its lower bound under a perfect schedule).
func (m ConvergecastMetrics) ForwardsPerDelivered() float64 {
	if m.DeliveredToSink == 0 {
		if m.Forwards == 0 {
			return 0
		}
		return float64(m.Forwards)
	}
	return float64(m.Forwards) / float64(m.DeliveredToSink)
}

// RunConvergecast executes the multi-hop collection simulation.
func RunConvergecast(cfg ConvergecastConfig) (ConvergecastMetrics, error) {
	if cfg.Deployment == nil || cfg.Protocol == nil {
		return ConvergecastMetrics{}, fmt.Errorf("%w: nil deployment or protocol", ErrSim)
	}
	if cfg.Slots <= 0 {
		return ConvergecastMetrics{}, fmt.Errorf("%w: %d slots", ErrSim, cfg.Slots)
	}
	if cfg.SourceRate < 0 || cfg.SourceRate > 1 {
		return ConvergecastMetrics{}, fmt.Errorf("%w: source rate %v", ErrSim, cfg.SourceRate)
	}
	if !cfg.Window.Contains(cfg.Sink) {
		return ConvergecastMetrics{}, fmt.Errorf("%w: sink %v outside window", ErrSim, cfg.Sink)
	}
	pts := cfg.Window.Points()
	n := len(pts)
	sink, _ := cfg.Window.IndexOf(cfg.Sink)
	// hears[v] lists u such that v ∈ u + N_u (v hears u); coveredBy is
	// the same relation used for collision resolution. Points index
	// densely into the window, so no keyed map is needed.
	coveredBy := make([][]int, n)
	canReach := make([][]int, n) // u → list of v that hear u
	for i, p := range pts {
		for _, q := range cfg.Deployment.NeighborhoodOf(p) {
			j, ok := cfg.Window.IndexOf(q)
			if !ok || j == i {
				continue
			}
			canReach[i] = append(canReach[i], j)
			coveredBy[j] = append(coveredBy[j], i)
		}
	}
	// BFS from the sink over reverse reachability: parent[u] is the next
	// hop toward the sink.
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	depth[sink] = 0
	queue := []int{sink}
	maxDepth := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// u is a child candidate when v hears u.
		for _, u := range coveredBy[v] {
			if depth[u] == -1 {
				depth[u] = depth[v] + 1
				parent[u] = v
				if depth[u] > maxDepth {
					maxDepth = depth[u]
				}
				queue = append(queue, u)
			}
		}
	}
	m := ConvergecastMetrics{Slots: cfg.Slots, Nodes: n, TreeDepth: maxDepth}
	for u := range parent {
		if u != sink && parent[u] == -1 {
			m.Unreachable++
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	queues := newRings(n, 8) // generation slots of queued packets
	transmitting := make([]bool, n)
	succeeded := make([]bool, n)
	coverCount := make([]int, n)
	for slot := int64(0); slot < cfg.Slots; slot++ {
		// 1. Generation at every routed non-sink node.
		for u := range pts {
			if u == sink || parent[u] == -1 {
				continue
			}
			if rng.Float64() < cfg.SourceRate {
				m.Generated++
				if cfg.QueueCap > 0 && queues[u].Len() >= cfg.QueueCap {
					m.Dropped++
					continue
				}
				queues[u].Push(slot)
			}
		}
		// 2. Transmission decisions.
		for u := range pts {
			transmitting[u] = u != sink && parent[u] != -1 &&
				queues[u].Len() > 0 && cfg.Protocol.Transmit(u, pts[u], slot, rng)
		}
		// 3. Coverage.
		for i := range coverCount {
			coverCount[i] = 0
		}
		for u := range pts {
			if !transmitting[u] {
				continue
			}
			for _, v := range canReach[u] {
				coverCount[v]++
			}
		}
		// 4. Hop outcomes: the parent must be silent and singly covered.
		for u := range pts {
			succeeded[u] = false
			if !transmitting[u] {
				continue
			}
			m.Forwards++
			v := parent[u]
			if transmitting[v] || coverCount[v] != 1 {
				m.FailedForwards++
				continue
			}
			succeeded[u] = true
			birth := queues[u].Pop()
			if v == sink {
				m.DeliveredToSink++
				m.TotalE2ELatency += slot - birth + 1
			} else {
				if cfg.QueueCap > 0 && queues[v].Len() >= cfg.QueueCap {
					m.Dropped++
				} else {
					queues[v].Push(birth)
				}
			}
		}
		cfg.Protocol.Observe(slot, transmitting, succeeded)
	}
	return m, nil
}
