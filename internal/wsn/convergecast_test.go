package wsn

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func crossSchedule(t *testing.T) *schedule.Theorem1 {
	t.Helper()
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling for cross")
	}
	return schedule.FromLatticeTiling(lt)
}

func TestConvergecastTilingNeverFails(t *testing.T) {
	// Under the tiling schedule, every hop succeeds first try: the
	// parent conflicts with the child (different slots) and same-slot
	// transmitters never cover the same point.
	s := crossSchedule(t)
	m, err := RunConvergecast(ConvergecastConfig{
		Window:     lattice.CenteredWindow(2, 4),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Sink:       lattice.Pt(0, 0),
		SourceRate: 0.01,
		Slots:      2000,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("RunConvergecast: %v", err)
	}
	if m.FailedForwards != 0 {
		t.Errorf("failed forwards = %d, want 0", m.FailedForwards)
	}
	if m.DeliveredToSink == 0 {
		t.Fatal("nothing delivered to the sink")
	}
	if m.Unreachable != 0 {
		t.Errorf("%d unreachable nodes on a connected grid", m.Unreachable)
	}
	if m.TreeDepth < 4 {
		t.Errorf("tree depth = %d, want ≥ 4 on a radius-4 window with radius-1 hops", m.TreeDepth)
	}
	if f := m.ForwardsPerDelivered(); f < 1 {
		t.Errorf("forwards per delivered = %v, want ≥ 1", f)
	}
}

func TestConvergecastAlohaLosesHops(t *testing.T) {
	s := crossSchedule(t)
	m, err := RunConvergecast(ConvergecastConfig{
		Window:     lattice.CenteredWindow(2, 4),
		Deployment: s.Deployment(),
		Protocol:   &SlottedALOHA{P: 0.3},
		Sink:       lattice.Pt(0, 0),
		SourceRate: 0.05,
		Slots:      1500,
		Seed:       5,
		QueueCap:   32,
	})
	if err != nil {
		t.Fatalf("RunConvergecast: %v", err)
	}
	if m.FailedForwards == 0 {
		t.Error("ALOHA convergecast never failed a hop (suspicious)")
	}
	if m.ForwardsPerDelivered() <= 1 && m.DeliveredToSink > 0 {
		t.Errorf("ALOHA forwards/delivered = %v, expected retransmission overhead",
			m.ForwardsPerDelivered())
	}
}

func TestConvergecastLatencyScalesWithDepth(t *testing.T) {
	// With light traffic and the 5-slot schedule, a packet travels at
	// most 5 slots per hop (one period), so mean latency stays well
	// under depth × period once queues are empty.
	s := crossSchedule(t)
	m, err := RunConvergecast(ConvergecastConfig{
		Window:     lattice.CenteredWindow(2, 5),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Sink:       lattice.Pt(0, 0),
		SourceRate: 0.002,
		Slots:      4000,
		Seed:       9,
	})
	if err != nil {
		t.Fatalf("RunConvergecast: %v", err)
	}
	if m.DeliveredToSink == 0 {
		t.Fatal("nothing delivered")
	}
	bound := float64(m.TreeDepth * s.Slots())
	if lat := m.MeanE2ELatency(); lat > bound {
		t.Errorf("mean e2e latency %v exceeds depth×period %v", lat, bound)
	}
}

func TestConvergecastValidation(t *testing.T) {
	s := crossSchedule(t)
	good := ConvergecastConfig{
		Window:     lattice.CenteredWindow(2, 2),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Sink:       lattice.Pt(0, 0),
		SourceRate: 0.1,
		Slots:      10,
	}
	bad := good
	bad.Protocol = nil
	if _, err := RunConvergecast(bad); err == nil {
		t.Error("nil protocol accepted")
	}
	bad = good
	bad.Sink = lattice.Pt(99, 99)
	if _, err := RunConvergecast(bad); err == nil {
		t.Error("out-of-window sink accepted")
	}
	bad = good
	bad.SourceRate = 1.5
	if _, err := RunConvergecast(bad); err == nil {
		t.Error("source rate > 1 accepted")
	}
	bad = good
	bad.Slots = 0
	if _, err := RunConvergecast(bad); err == nil {
		t.Error("0 slots accepted")
	}
}

func TestConvergecastMetricsZeroSafety(t *testing.T) {
	var m ConvergecastMetrics
	if m.MeanE2ELatency() != 0 || m.ForwardsPerDelivered() != 0 {
		t.Error("zero metrics should yield zero ratios")
	}
}

func TestSkewedMACZeroSkewMatchesSchedule(t *testing.T) {
	s := crossSchedule(t)
	skewed, err := NewSkewedScheduleMAC("tiling", s, 0, 1)
	if err != nil {
		t.Fatalf("NewSkewedScheduleMAC: %v", err)
	}
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: s.Deployment(),
		Protocol:   skewed,
		Traffic:    Saturated{},
		Slots:      200,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.FailedTx != 0 {
		t.Errorf("zero skew produced %d failures", m.FailedTx)
	}
}

func TestSkewedMACIntroducesCollisions(t *testing.T) {
	s := crossSchedule(t)
	run := func(prob float64) Metrics {
		skewed, err := NewSkewedScheduleMAC("tiling", s, prob, 7)
		if err != nil {
			t.Fatalf("NewSkewedScheduleMAC: %v", err)
		}
		m, err := Run(Config{
			Window:     lattice.CenteredWindow(2, 4),
			Deployment: s.Deployment(),
			Protocol:   skewed,
			Traffic:    Saturated{},
			Slots:      300,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	low := run(0.05)
	high := run(0.3)
	if high.FailedTx == 0 {
		t.Error("30% skew produced no collisions (suspicious)")
	}
	if high.FailedTx <= low.FailedTx {
		t.Errorf("more skew should fail more: low=%d high=%d", low.FailedTx, high.FailedTx)
	}
}

func TestSkewedMACValidation(t *testing.T) {
	s := crossSchedule(t)
	if _, err := NewSkewedScheduleMAC("x", s, -0.1, 1); err == nil {
		t.Error("negative skew accepted")
	}
	if _, err := NewSkewedScheduleMAC("x", s, 1.1, 1); err == nil {
		t.Error("skew > 1 accepted")
	}
}

func TestDutyCycleBounds(t *testing.T) {
	s := crossSchedule(t)
	// Saturated tiling schedule: someone in range transmits nearly every
	// slot, so the duty cycle approaches 1 — the throughput/energy
	// trade-off of optimal packing.
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Saturated{},
		Slots:      200,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := m.DutyCycle(); d <= 0.5 || d > 1 {
		t.Errorf("saturated duty cycle = %v, want in (0.5, 1]", d)
	}
	// Light traffic: radios mostly sleep.
	m2, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Bernoulli{P: 0.01},
		Slots:      500,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m2.DutyCycle() >= m.DutyCycle() {
		t.Errorf("light-traffic duty cycle %v not below saturated %v",
			m2.DutyCycle(), m.DutyCycle())
	}
}
