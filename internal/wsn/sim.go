// Package wsn is a slotted-radio, discrete-event simulator for sensors on
// lattice points, implementing precisely the paper's interference model:
//
//   - a broadcast by the sensor at a reaches the sensors in (a + N_a)\{a};
//   - a receiver r misses the message when r itself transmits in the same
//     slot (the first collision problem of the Introduction), or when some
//     other simultaneous transmitter b also covers r (the second collision
//     problem — r is within interference range of both);
//   - an unsuccessful broadcast must be resent, which "is evidently a
//     waste of energy": packets stay queued and transmissions are counted
//     as the energy proxy.
//
// The simulator drives any slot schedule (tiling, TDMA, graph colorings)
// and the contention baselines (slotted ALOHA, p-CSMA) through one code
// path so the paper's deterministic-vs-probabilistic comparison is
// apples-to-apples.
package wsn

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// ErrSim indicates an invalid simulation configuration.
var ErrSim = errors.New("wsn: invalid simulation")

// Config parameterizes one simulation run.
type Config struct {
	// Window is the finite deployment region; one sensor per point.
	Window lattice.Window
	// Deployment supplies interference neighborhoods (homogeneous or D1).
	Deployment schedule.Deployment
	// Protocol decides who transmits each slot.
	Protocol Protocol
	// Traffic generates packet arrivals.
	Traffic Traffic
	// Slots is the number of time slots to simulate.
	Slots int64
	// Seed feeds the deterministic random source.
	Seed int64
	// QueueCap bounds each sensor's queue; arrivals beyond it are
	// dropped (0 means unbounded).
	QueueCap int
	// NodeFailureProb is each sensor's independent per-slot probability
	// of permanent failure. Dead sensors neither transmit nor receive;
	// broadcast success is judged over the surviving intended receivers.
	// Because a tiling schedule restricted to any subset of sensors is
	// still collision-free (condition T2 is closed under removal), the
	// schedule keeps working unmodified as the network decays.
	NodeFailureProb float64
	// Churn is a deterministic deployment-mutation script: at the start
	// of each event's slot the sensor at its position joins (Up) or
	// leaves (!Up). Unlike NodeFailureProb's permanent random deaths,
	// churn is the planned join/leave/duty-cycle scenario of dynamic
	// deployments (internal/dynamic): a departed sensor keeps its queue
	// and resumes on rejoin, and the slot schedule is untouched — the
	// simulator demonstrates that a tiling schedule needs no
	// rescheduling under churn (subset-closure of condition T2).
	// Events may be listed in any order; Run applies them slot-sorted.
	Churn []ChurnEvent
}

// ChurnEvent is one scripted deployment mutation: the sensor at P goes
// up or down at the start of slot Slot. P must lie in the window.
type ChurnEvent struct {
	Slot int64
	P    lattice.Point
	Up   bool
}

// Metrics aggregates the outcome of a run.
type Metrics struct {
	Slots              int64
	Nodes              int
	Arrivals           int64
	Delivered          int64 // broadcasts heard by all intended receivers
	Dropped            int64 // arrivals discarded by full queues
	Transmissions      int64 // energy proxy: every transmission costs
	SuccessfulTx       int64
	FailedTx           int64 // transmissions requiring retransmission
	ReceiverCollisions int64 // receiver-slot events covered by ≥2 transmitters
	TotalLatency       int64 // arrival→delivery, in slots, summed
	MaxQueueLen        int
	// RadioOnSlots counts node-slots with the radio active: transmitting
	// or covered by at least one transmitter (ideal receiver-side duty
	// cycling — a node sleeps whenever no in-range sensor transmits).
	RadioOnSlots int64
	// NodesFailed counts sensors that died during the run.
	NodesFailed int
	// NodesLeft and NodesJoined count applied churn events (a join of an
	// already-live node or a leave of an already-dead one is a no-op and
	// not counted).
	NodesLeft, NodesJoined int
	// PerNodeDelivered holds each sensor's successful broadcast count,
	// for fairness analysis.
	PerNodeDelivered []int64
}

// FairnessIndex is Jain's fairness index over per-node delivered counts:
// (Σx)² / (n·Σx²), 1.0 when perfectly fair, →1/n when one node hogs the
// channel. Deterministic schedules are provably fair; contention
// protocols are not.
func (m Metrics) FairnessIndex() float64 {
	n := len(m.PerNodeDelivered)
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range m.PerNodeDelivered {
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// DeliveryRatio is the fraction of transmissions heard by every intended
// receiver.
func (m Metrics) DeliveryRatio() float64 {
	if m.Transmissions == 0 {
		return 0
	}
	return float64(m.SuccessfulTx) / float64(m.Transmissions)
}

// Goodput is delivered broadcasts per node per slot.
func (m Metrics) Goodput() float64 {
	if m.Slots == 0 || m.Nodes == 0 {
		return 0
	}
	return float64(m.Delivered) / (float64(m.Slots) * float64(m.Nodes))
}

// MeanLatency is the average slots from arrival to successful broadcast.
func (m Metrics) MeanLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.Delivered)
}

// DutyCycle is the fraction of node-slots with the radio on (transmit or
// receive), under ideal receiver-side duty cycling.
func (m Metrics) DutyCycle() float64 {
	if m.Slots == 0 || m.Nodes == 0 {
		return 0
	}
	return float64(m.RadioOnSlots) / (float64(m.Slots) * float64(m.Nodes))
}

// EnergyPerDelivered is transmissions spent per delivered broadcast — the
// paper's wasted-energy measure (1.0 is perfect).
func (m Metrics) EnergyPerDelivered() float64 {
	if m.Delivered == 0 {
		if m.Transmissions == 0 {
			return 0
		}
		return float64(m.Transmissions)
	}
	return float64(m.Transmissions) / float64(m.Delivered)
}

// Run executes the simulation.
func Run(cfg Config) (Metrics, error) {
	if cfg.Deployment == nil || cfg.Protocol == nil || cfg.Traffic == nil {
		return Metrics{}, fmt.Errorf("%w: nil deployment, protocol, or traffic", ErrSim)
	}
	if cfg.Slots <= 0 {
		return Metrics{}, fmt.Errorf("%w: %d slots", ErrSim, cfg.Slots)
	}
	if cfg.Window.Dim() != cfg.Deployment.Dim() {
		return Metrics{}, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrSim, cfg.Window.Dim(), cfg.Deployment.Dim())
	}
	if cfg.NodeFailureProb < 0 || cfg.NodeFailureProb > 1 {
		return Metrics{}, fmt.Errorf("%w: failure probability %v", ErrSim, cfg.NodeFailureProb)
	}
	pts := cfg.Window.Points()
	n := len(pts)
	// Precompute intended receivers (in-window, excluding self) and, for
	// reception resolution, the reverse relation: which nodes'
	// transmissions cover each node. Points index densely into the window
	// (Window.IndexOf), so no keyed map is needed.
	receivers := make([][]int, n)
	coveredBy := make([][]int, n)
	for i, p := range pts {
		for _, q := range cfg.Deployment.NeighborhoodOf(p) {
			j, ok := cfg.Window.IndexOf(q)
			if !ok || j == i {
				continue
			}
			receivers[i] = append(receivers[i], j)
			coveredBy[j] = append(coveredBy[j], i)
		}
	}
	// Validate and slot-sort the churn script (stable: same-slot events
	// apply in listed order).
	churn := make([]ChurnEvent, len(cfg.Churn))
	copy(churn, cfg.Churn)
	for _, ev := range churn {
		if _, ok := cfg.Window.IndexOf(ev.P); !ok {
			return Metrics{}, fmt.Errorf("%w: churn event at %v outside window %s", ErrSim, ev.P, cfg.Window)
		}
		if ev.Slot < 0 {
			return Metrics{}, fmt.Errorf("%w: churn event at negative slot %d", ErrSim, ev.Slot)
		}
	}
	sort.SliceStable(churn, func(a, b int) bool { return churn[a].Slot < churn[b].Slot })
	nextChurn := 0
	rng := rand.New(rand.NewSource(cfg.Seed))
	queues := newRings(n, 8) // arrival slots of queued packets
	var m Metrics
	m.Slots = cfg.Slots
	m.Nodes = n
	m.PerNodeDelivered = make([]int64, n)
	transmitting := make([]bool, n)
	succeeded := make([]bool, n)
	coverCount := make([]int, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for slot := int64(0); slot < cfg.Slots; slot++ {
		// 0a. Scripted churn.
		for nextChurn < len(churn) && churn[nextChurn].Slot <= slot {
			ev := churn[nextChurn]
			nextChurn++
			i, _ := cfg.Window.IndexOf(ev.P)
			if alive[i] == ev.Up {
				continue
			}
			alive[i] = ev.Up
			if ev.Up {
				m.NodesJoined++
			} else {
				m.NodesLeft++
			}
		}
		// 0b. Failures.
		if cfg.NodeFailureProb > 0 {
			for i := range alive {
				if alive[i] && rng.Float64() < cfg.NodeFailureProb {
					alive[i] = false
					m.NodesFailed++
				}
			}
		}
		// 1. Arrivals.
		for i := range pts {
			if !alive[i] {
				continue
			}
			k := cfg.Traffic.Arrivals(i, slot, rng)
			for a := 0; a < k; a++ {
				m.Arrivals++
				if cfg.QueueCap > 0 && queues[i].Len() >= cfg.QueueCap {
					m.Dropped++
					continue
				}
				queues[i].Push(slot)
				if queues[i].Len() > m.MaxQueueLen {
					m.MaxQueueLen = queues[i].Len()
				}
			}
		}
		// 2. Transmission decisions.
		for i := range pts {
			transmitting[i] = alive[i] && queues[i].Len() > 0 &&
				cfg.Protocol.Transmit(i, pts[i], slot, rng)
		}
		// 3. Coverage resolution.
		for i := range coverCount {
			coverCount[i] = 0
		}
		for i := range pts {
			if !transmitting[i] {
				continue
			}
			for _, r := range receivers[i] {
				coverCount[r]++
			}
		}
		for r, c := range coverCount {
			if c >= 2 {
				m.ReceiverCollisions++
			}
			if c >= 1 || transmitting[r] {
				m.RadioOnSlots++
			}
		}
		// 4. Broadcast outcomes.
		for i := range pts {
			succeeded[i] = false
			if !transmitting[i] {
				continue
			}
			m.Transmissions++
			ok := true
			for _, r := range receivers[i] {
				if !alive[r] {
					continue // dead receivers impose no requirement
				}
				// r hears i iff r is silent and i is r's only coverer.
				if transmitting[r] || coverCount[r] != 1 {
					ok = false
					break
				}
			}
			if ok {
				m.SuccessfulTx++
				m.Delivered++
				m.PerNodeDelivered[i]++
				arrival := queues[i].Pop()
				m.TotalLatency += slot - arrival + 1
				succeeded[i] = true
			} else {
				m.FailedTx++
			}
		}
		// 5. Protocol feedback.
		cfg.Protocol.Observe(slot, transmitting, succeeded)
	}
	return m, nil
}
