package wsn

import (
	"reflect"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func tilingSetup(t *testing.T, ti *prototile.Tile) (*schedule.Theorem1, *schedule.Homogeneous) {
	t.Helper()
	lt, ok := tiling.FindLatticeTiling(ti)
	if !ok {
		t.Fatalf("no tiling for %s", ti.Name())
	}
	s := schedule.FromLatticeTiling(lt)
	return s, s.Deployment()
}

func TestTilingMACNeverCollides(t *testing.T) {
	// The headline systems claim: the Theorem 1 schedule produces zero
	// collisions and every transmission succeeds, even under saturation.
	for _, ti := range []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.Directional(),
		prototile.MustTetromino("S"),
	} {
		s, dep := tilingSetup(t, ti)
		m, err := Run(Config{
			Window:     lattice.CenteredWindow(2, 5),
			Deployment: dep,
			Protocol:   NewScheduleMAC("tiling", s),
			Traffic:    Saturated{},
			Slots:      200,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%s: Run: %v", ti.Name(), err)
		}
		if m.FailedTx != 0 {
			t.Errorf("%s: %d failed transmissions, want 0", ti.Name(), m.FailedTx)
		}
		if m.ReceiverCollisions != 0 {
			t.Errorf("%s: %d receiver collisions, want 0", ti.Name(), m.ReceiverCollisions)
		}
		if m.Transmissions != m.SuccessfulTx {
			t.Errorf("%s: tx=%d success=%d", ti.Name(), m.Transmissions, m.SuccessfulTx)
		}
		if m.EnergyPerDelivered() != 1.0 {
			t.Errorf("%s: energy/delivered = %v, want 1.0", ti.Name(), m.EnergyPerDelivered())
		}
		// Each sensor transmits once per |N| slots under saturation.
		wantTx := int64(m.Nodes) * (200 / int64(ti.Size()))
		if m.Transmissions < wantTx-int64(m.Nodes) || m.Transmissions > wantTx+int64(m.Nodes) {
			t.Errorf("%s: transmissions = %d, want ≈ %d", ti.Name(), m.Transmissions, wantTx)
		}
	}
}

func TestPlainTDMANeverCollidesButSlow(t *testing.T) {
	w := lattice.CenteredWindow(2, 3) // 49 sensors
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	s := schedule.PlainTDMA(w)
	m, err := Run(Config{
		Window:     w,
		Deployment: dep,
		Protocol:   NewScheduleMAC("tdma", s),
		Traffic:    Saturated{},
		Slots:      490, // ten full TDMA rounds
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.FailedTx != 0 || m.ReceiverCollisions != 0 {
		t.Errorf("plain TDMA collided: failed=%d rc=%d", m.FailedTx, m.ReceiverCollisions)
	}
	// Exactly one transmission per slot network-wide.
	if m.Transmissions != 490 {
		t.Errorf("transmissions = %d, want 490", m.Transmissions)
	}
	// Goodput is 1/n per node — the scaling failure the paper calls out.
	if g := m.Goodput(); g > 1.0/float64(m.Nodes)+1e-9 {
		t.Errorf("goodput = %v, want ≤ 1/%d", g, m.Nodes)
	}
}

func TestAlohaFullPressureAllCollide(t *testing.T) {
	// With p = 1 and saturation everyone transmits always; nobody can
	// listen, so nothing is ever delivered.
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: dep,
		Protocol:   &SlottedALOHA{P: 1},
		Traffic:    Saturated{},
		Slots:      50,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Delivered != 0 {
		t.Errorf("delivered = %d, want 0", m.Delivered)
	}
	if m.FailedTx != m.Transmissions {
		t.Errorf("failed=%d tx=%d, want all failed", m.FailedTx, m.Transmissions)
	}
}

func TestAlohaModeratePressureDegrades(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 4),
		Deployment: dep,
		Protocol:   &SlottedALOHA{P: 0.15},
		Traffic:    Saturated{},
		Slots:      400,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Delivered == 0 {
		t.Error("moderate ALOHA delivered nothing")
	}
	if m.FailedTx == 0 {
		t.Error("moderate ALOHA never collided (suspicious)")
	}
	if r := m.DeliveryRatio(); r >= 1 {
		t.Errorf("delivery ratio = %v, want < 1", r)
	}
	if e := m.EnergyPerDelivered(); e <= 1 {
		t.Errorf("energy/delivered = %v, want > 1", e)
	}
}

func TestCSMAImprovesOnAloha(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 4)
	run := func(p Protocol) Metrics {
		m, err := Run(Config{
			Window: w, Deployment: dep, Protocol: p,
			Traffic: Bernoulli{P: 0.05}, Slots: 600, Seed: 11,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	aloha := run(&SlottedALOHA{P: 0.5})
	csma, err := NewCSMA(0.5, dep, w)
	if err != nil {
		t.Fatalf("NewCSMA: %v", err)
	}
	csmaM := run(csma)
	if csmaM.DeliveryRatio() <= aloha.DeliveryRatio() {
		t.Errorf("CSMA delivery %v not better than ALOHA %v",
			csmaM.DeliveryRatio(), aloha.DeliveryRatio())
	}
}

func TestTheorem2ScheduleInSimulator(t *testing.T) {
	// D1 deployment + Theorem 2 schedule: still zero collisions.
	s4 := prototile.MustTetromino("S")
	z4 := prototile.MustTetromino("Z")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s4, z4},
		tiling.SolveOptions{MaxSolutions: 3})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v", err)
	}
	for _, sol := range sols {
		sched2, err := schedule.FromTorusTiling(sol)
		if err != nil {
			t.Fatalf("FromTorusTiling: %v", err)
		}
		m, err := Run(Config{
			Window:     lattice.CenteredWindow(2, 5),
			Deployment: schedule.NewD1(sol),
			Protocol:   NewScheduleMAC("theorem2", sched2),
			Traffic:    Saturated{},
			Slots:      100,
			Seed:       3,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if m.FailedTx != 0 || m.ReceiverCollisions != 0 {
			t.Errorf("Theorem 2 schedule collided on %v: failed=%d rc=%d",
				sol.TileCounts(), m.FailedTx, m.ReceiverCollisions)
		}
	}
}

func TestLatencyBoundedByPeriod(t *testing.T) {
	// With sparse periodic traffic, a tiling schedule delivers within one
	// period.
	s, dep := tilingSetup(t, prototile.Cross(2, 1))
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: dep,
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Periodic{Interval: 50},
		Slots:      500,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if lat := m.MeanLatency(); lat > float64(s.Slots()) {
		t.Errorf("mean latency %v exceeds schedule period %d", lat, s.Slots())
	}
}

func TestQueueCapDrops(t *testing.T) {
	// ALOHA p=1 under saturation never delivers, so a bounded queue must
	// drop arrivals.
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 2),
		Deployment: dep,
		Protocol:   &SlottedALOHA{P: 1},
		Traffic:    Saturated{},
		Slots:      50,
		Seed:       1,
		QueueCap:   5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Dropped == 0 {
		t.Error("no drops despite full queues")
	}
	if m.MaxQueueLen > 5 {
		t.Errorf("queue exceeded cap: %d", m.MaxQueueLen)
	}
}

func TestRunDeterministic(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	cfg := Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: dep,
		Protocol:   &SlottedALOHA{P: 0.3},
		Traffic:    Bernoulli{P: 0.2},
		Slots:      200,
		Seed:       99,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Protocol = &SlottedALOHA{P: 0.3} // fresh protocol state
	m2, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", m1, m2)
	}
}

func TestRunConfigValidation(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	base := Config{
		Window:     lattice.CenteredWindow(2, 2),
		Deployment: dep,
		Protocol:   &SlottedALOHA{P: 0.5},
		Traffic:    Saturated{},
		Slots:      10,
	}
	bad := base
	bad.Protocol = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil protocol accepted")
	}
	bad = base
	bad.Slots = 0
	if _, err := Run(bad); err == nil {
		t.Error("0 slots accepted")
	}
	bad = base
	bad.Window = lattice.CenteredWindow(3, 2)
	if _, err := Run(bad); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestTrafficModels(t *testing.T) {
	// Periodic: node 0 with interval 10 gets arrivals at slots 0, 10, ….
	p := Periodic{Interval: 10}
	count := 0
	for slot := int64(0); slot < 100; slot++ {
		count += p.Arrivals(0, slot, nil)
	}
	if count != 10 {
		t.Errorf("periodic arrivals = %d, want 10", count)
	}
	if (Periodic{Interval: 0}).Arrivals(0, 0, nil) != 0 {
		t.Error("zero-interval periodic produced arrivals")
	}
}

func TestMetricsZeroSafety(t *testing.T) {
	var m Metrics
	if m.DeliveryRatio() != 0 || m.Goodput() != 0 || m.MeanLatency() != 0 || m.EnergyPerDelivered() != 0 {
		t.Error("zero metrics should yield zero ratios")
	}
}
