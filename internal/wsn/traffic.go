package wsn

import "math/rand"

// Traffic generates packet arrivals per node per slot.
type Traffic interface {
	// Arrivals returns how many packets arrive at the node in this slot.
	Arrivals(node int, slot int64, rng *rand.Rand) int
}

// Saturated keeps every queue nonempty: one arrival per node per slot.
// Used to measure peak sustainable throughput.
type Saturated struct{}

// Arrivals always returns 1.
func (Saturated) Arrivals(int, int64, *rand.Rand) int { return 1 }

// Bernoulli delivers a packet with probability P each slot — the standard
// memoryless sensing-traffic model.
type Bernoulli struct {
	P float64
}

// Arrivals returns 1 with probability P.
func (b Bernoulli) Arrivals(_ int, _ int64, rng *rand.Rand) int {
	if rng.Float64() < b.P {
		return 1
	}
	return 0
}

// Periodic delivers one packet every Interval slots (phase-shifted per
// node to avoid synchronized bursts) — the periodic-sensing workload of a
// monitoring deployment.
type Periodic struct {
	Interval int64
}

// Arrivals returns 1 on the node's phase slot of each interval.
func (p Periodic) Arrivals(node int, slot int64, _ *rand.Rand) int {
	if p.Interval <= 0 {
		return 0
	}
	if slot%p.Interval == int64(node)%p.Interval {
		return 1
	}
	return 0
}
