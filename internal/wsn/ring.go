package wsn

// slotRing is a growable FIFO ring buffer of queued packet slots. Unlike
// the append/reslice queue it replaces, a ring keeps its capacity across
// pops, so a node's queue allocates only on genuine high-water-mark
// growth — the steady state of a simulation pushes and pops with zero
// allocations (ROADMAP hot-path item; see BenchmarkSimulatorSlot).
//
// Rings are value types: a simulator holds one flat []slotRing with no
// per-node pointer indirection, and seeds every node's initial buffer
// from one shared arena (newRings).
type slotRing struct {
	buf  []int64
	head int // index of the oldest element
	n    int // number of queued elements
}

// newRings builds n rings, each viewing a private initCap-slot region of
// one shared arena — a single allocation for the whole fleet's initial
// capacity. Rings that outgrow their region migrate to private buffers.
func newRings(n, initCap int) []slotRing {
	rings := make([]slotRing, n)
	if initCap > 0 {
		arena := make([]int64, n*initCap)
		for i := range rings {
			rings[i].buf = arena[i*initCap : (i+1)*initCap : (i+1)*initCap]
		}
	}
	return rings
}

// Len returns the number of queued elements.
func (r *slotRing) Len() int { return r.n }

// Push appends v, growing the buffer geometrically when full.
func (r *slotRing) Push(v int64) {
	if r.n == len(r.buf) {
		grown := make([]int64, max(2*len(r.buf), 8))
		n := copy(grown, r.buf[r.head:])
		copy(grown[n:], r.buf[:r.head])
		r.buf, r.head = grown, 0
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// Pop removes and returns the oldest element; it panics on an empty
// ring (callers always guard with Len).
func (r *slotRing) Pop() int64 {
	if r.n == 0 {
		panic("wsn: pop from empty ring")
	}
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Peek returns the oldest element without removing it.
func (r *slotRing) Peek() int64 {
	if r.n == 0 {
		panic("wsn: peek at empty ring")
	}
	return r.buf[r.head]
}
