package wsn

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func TestBackoffValidation(t *testing.T) {
	if _, err := NewBackoffALOHA(0, 0.1); err == nil {
		t.Error("pMax = 0 accepted")
	}
	if _, err := NewBackoffALOHA(0.5, 0.8); err == nil {
		t.Error("pMin > pMax accepted")
	}
	if _, err := NewBackoffALOHA(1.5, 0.1); err == nil {
		t.Error("pMax > 1 accepted")
	}
	if _, err := NewBackoffALOHA(0.5, 0.01); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
}

func TestBackoffBeatsFixedAlohaUnderSaturation(t *testing.T) {
	// Under saturation, exponential backoff self-stabilizes toward a
	// sustainable contention level while fixed-probability ALOHA keeps
	// colliding at the same rate.
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 4)
	run := func(p Protocol) Metrics {
		m, err := Run(Config{
			Window: w, Deployment: dep, Protocol: p,
			Traffic: Saturated{}, Slots: 1500, Seed: 21, QueueCap: 16,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	beb, err := NewBackoffALOHA(0.5, 0.01)
	if err != nil {
		t.Fatalf("NewBackoffALOHA: %v", err)
	}
	bebM := run(beb)
	fixedM := run(&SlottedALOHA{P: 0.5})
	if bebM.Delivered <= fixedM.Delivered {
		t.Errorf("backoff delivered %d, fixed ALOHA %d — expected improvement",
			bebM.Delivered, fixedM.Delivered)
	}
	if bebM.DeliveryRatio() <= fixedM.DeliveryRatio() {
		t.Errorf("backoff delivery ratio %v not above fixed %v",
			bebM.DeliveryRatio(), fixedM.DeliveryRatio())
	}
}

func TestBackoffStillLosesToTiling(t *testing.T) {
	// The paper's point stands: even the adaptive probabilistic baseline
	// wastes transmissions the deterministic schedule never does.
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	w := lattice.CenteredWindow(2, 4)
	run := func(p Protocol) Metrics {
		m, err := Run(Config{
			Window: w, Deployment: dep, Protocol: p,
			Traffic: Saturated{}, Slots: 1000, Seed: 3, QueueCap: 16,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	beb, _ := NewBackoffALOHA(0.5, 0.01)
	bebM := run(beb)
	tilingM := run(NewScheduleMAC("tiling", s))
	if bebM.EnergyPerDelivered() <= tilingM.EnergyPerDelivered() {
		t.Errorf("backoff energy %v not above tiling %v",
			bebM.EnergyPerDelivered(), tilingM.EnergyPerDelivered())
	}
	if tilingM.Delivered <= bebM.Delivered {
		t.Errorf("tiling delivered %d, backoff %d — schedule should win",
			tilingM.Delivered, bebM.Delivered)
	}
}

func TestFairnessIndex(t *testing.T) {
	// Tiling schedule under saturation: perfectly fair (each sensor one
	// broadcast per period).
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	m, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: s.Deployment(),
		Protocol:   NewScheduleMAC("tiling", s),
		Traffic:    Saturated{},
		Slots:      500, // multiple of 5: every sensor gets 100 turns
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f := m.FairnessIndex(); f != 1.0 {
		t.Errorf("tiling fairness = %v, want 1.0", f)
	}
	// ALOHA is less fair: collisions are position dependent (boundary
	// sensors have fewer neighbors and succeed more).
	m2, err := Run(Config{
		Window:     lattice.CenteredWindow(2, 3),
		Deployment: s.Deployment(),
		Protocol:   &SlottedALOHA{P: 0.2},
		Traffic:    Saturated{},
		Slots:      500,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f := m2.FairnessIndex(); f >= 1.0 || f <= 0 {
		t.Errorf("ALOHA fairness = %v, want within (0, 1)", f)
	}
	var zero Metrics
	if zero.FairnessIndex() != 0 {
		t.Error("zero metrics fairness should be 0")
	}
}
