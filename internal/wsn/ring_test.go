package wsn

import "testing"

func TestSlotRingFIFO(t *testing.T) {
	rings := newRings(3, 2)
	r := &rings[1]
	// Interleave pushes and pops across several wraparounds and growths.
	next, expect := int64(0), int64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			r.Push(next)
			next++
		}
		if r.Peek() != expect {
			t.Fatalf("round %d: Peek = %d, want %d", round, r.Peek(), expect)
		}
		for i := 0; i < 2+round%4 && r.Len() > 0; i++ {
			if got := r.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
	// Neighboring arena regions must be untouched.
	if rings[0].Len() != 0 || rings[2].Len() != 0 {
		t.Error("neighboring rings not empty")
	}
}

func TestSlotRingSteadyStateZeroAlloc(t *testing.T) {
	rings := newRings(1, 8)
	r := &rings[0]
	if n := testing.AllocsPerRun(100, func() {
		for i := int64(0); i < 8; i++ {
			r.Push(i)
		}
		for r.Len() > 0 {
			r.Pop()
		}
	}); n != 0 {
		t.Errorf("steady-state push/pop allocates %.1f per cycle, want 0", n)
	}
}

func TestSlotRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty ring did not panic")
		}
	}()
	var r slotRing
	r.Pop()
}
