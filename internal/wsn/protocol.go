package wsn

import (
	"fmt"
	"math/rand"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// Protocol decides, for each sensor with queued packets, whether it
// transmits in the current slot, and receives feedback after the slot.
type Protocol interface {
	// Name identifies the protocol in experiment tables.
	Name() string
	// Transmit is consulted only for nodes with a nonempty queue.
	Transmit(node int, p lattice.Point, slot int64, rng *rand.Rand) bool
	// Observe delivers post-slot feedback: who transmitted and who
	// succeeded. Stateless protocols may ignore it.
	Observe(slot int64, transmitting, succeeded []bool)
}

// ScheduleMAC transmits exactly in the sensor's scheduled slot: the
// deterministic periodic discipline of the paper (Theorem 1/2 schedules,
// plain TDMA, and graph-coloring schedules all plug in here).
type ScheduleMAC struct {
	name  string
	sched schedule.Schedule
}

// NewScheduleMAC wraps a slot schedule as a MAC protocol.
func NewScheduleMAC(name string, s schedule.Schedule) *ScheduleMAC {
	return &ScheduleMAC{name: name, sched: s}
}

// Name returns the protocol label.
func (s *ScheduleMAC) Name() string { return s.name }

// Transmit fires when t ≡ SlotOf(p) (mod m).
func (s *ScheduleMAC) Transmit(_ int, p lattice.Point, slot int64, _ *rand.Rand) bool {
	k, err := s.sched.SlotOf(p)
	if err != nil {
		// A schedule that cannot place a deployed sensor is a
		// configuration bug; surfacing it loudly beats silently muting
		// the sensor.
		panic(fmt.Sprintf("wsn: schedule has no slot for %v: %v", p, err))
	}
	m := int64(s.sched.Slots())
	return slot%m == int64(k)
}

// Observe is a no-op: deterministic schedules need no feedback.
func (s *ScheduleMAC) Observe(int64, []bool, []bool) {}

// SlottedALOHA transmits each queued packet with probability P per slot —
// the classical probabilistic baseline the Introduction alludes to
// ("most communication protocols for wireless sensor networks are
// probabilistic in nature").
type SlottedALOHA struct {
	P float64
}

// Name returns "aloha(p)".
func (a *SlottedALOHA) Name() string { return fmt.Sprintf("aloha(%.2f)", a.P) }

// Transmit fires with probability P.
func (a *SlottedALOHA) Transmit(_ int, _ lattice.Point, _ int64, rng *rand.Rand) bool {
	return rng.Float64() < a.P
}

// Observe is a no-op.
func (a *SlottedALOHA) Observe(int64, []bool, []bool) {}

// CSMA is a slotted p-persistent carrier-sense protocol: a sensor defers
// whenever any conflicting sensor transmitted in the previous slot
// (carrier sensing at slot granularity), otherwise transmits with
// probability P. Conflict neighborhoods come from the deployment, so
// sensing range equals interference range.
type CSMA struct {
	P         float64
	neighbors [][]int
	lastBusy  []bool
}

// NewCSMA precomputes each node's conflict neighbors over the window. The
// conflict relation (intersecting interference neighborhoods) is exactly
// the conflict graph's edge set, so the adjacency is built once by
// graph.ConflictGraph's dense-index machinery. The retained rows are the
// graph's shared read-only Neighbors slices — in CSR mode (large
// windows) they all alias one flat column array, so the carrier-sense
// scan walks contiguous memory and no per-node copies are made.
func NewCSMA(p float64, dep schedule.Deployment, w lattice.Window) (*CSMA, error) {
	if w.Dim() != dep.Dim() {
		return nil, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrSim, w.Dim(), dep.Dim())
	}
	g, pts, err := graph.ConflictGraph(dep, w)
	if err != nil {
		return nil, err
	}
	neighbors := make([][]int, len(pts))
	for i := range neighbors {
		neighbors[i] = g.Neighbors(i)
	}
	return &CSMA{P: p, neighbors: neighbors, lastBusy: make([]bool, len(pts))}, nil
}

// Name returns "csma(p)".
func (c *CSMA) Name() string { return fmt.Sprintf("csma(%.2f)", c.P) }

// Transmit defers when a conflicting neighbor was busy last slot.
func (c *CSMA) Transmit(node int, _ lattice.Point, _ int64, rng *rand.Rand) bool {
	for _, nb := range c.neighbors[node] {
		if c.lastBusy[nb] {
			return false
		}
	}
	return rng.Float64() < c.P
}

// Observe records the transmitter set for next slot's carrier sense.
func (c *CSMA) Observe(_ int64, transmitting, _ []bool) {
	copy(c.lastBusy, transmitting)
}
