// Package lattice models Euclidean lattices and finite regions of them.
//
// A Euclidean lattice L ⊂ R^d is a discrete subgroup spanning R^d; fixing
// a basis identifies L with Z^d, so every point in this package is a
// vector of integer coordinates relative to the lattice basis. The
// geometric embedding (the basis vectors as real vectors) is carried by
// the Lattice type and is only needed for metric constructions such as
// Euclidean balls and Voronoi cells; all tiling and scheduling logic is
// purely group-theoretic and works on coordinates.
package lattice

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Point is a lattice point in basis coordinates. Points are value-like:
// operations return fresh slices and never alias their operands.
type Point []int

// Pt builds a point from coordinates.
func Pt(coords ...int) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Origin returns the zero point of the given dimension.
func Origin(dim int) Point { return make(Point, dim) }

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// AddInto appends the coordinates of p + q to dst and returns the
// extended slice. It lets callers pack many sums into one reused backing
// array (dst may be a sub-slice of a larger buffer) instead of allocating
// a fresh point per operation as Add does.
func (p Point) AddInto(q, dst Point) Point {
	mustSameDim(p, q)
	for i := range p {
		dst = append(dst, p[i]+q[i])
	}
	return dst
}

// SubInto appends the coordinates of p - q to dst and returns the
// extended slice; the buffer-reusing counterpart of Sub.
func (p Point) SubInto(q, dst Point) Point {
	mustSameDim(p, q)
	for i := range p {
		dst = append(dst, p[i]-q[i])
	}
	return dst
}

// Neg returns -p.
func (p Point) Neg() Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = -p[i]
	}
	return r
}

// Scale returns c·p.
func (p Point) Scale(c int) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = c * p[i]
	}
	return r
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsOrigin reports whether every coordinate of p is zero.
func (p Point) IsOrigin() bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}

// Less imposes a total lexicographic order on points of equal dimension,
// used for deterministic iteration and canonical normal forms.
func (p Point) Less(q Point) bool {
	mustSameDim(p, q)
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// Key returns a compact string key for use in maps, e.g. "3,-1".
func (p Point) Key() string {
	var b strings.Builder
	for i, c := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// String renders the point as "(x, y, …)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = strconv.Itoa(c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Int64 returns the coordinates widened to int64, for use with intmat.
func (p Point) Int64() []int64 {
	v := make([]int64, len(p))
	for i, c := range p {
		v[i] = int64(c)
	}
	return v
}

// FromInt64 narrows an int64 vector to a Point.
func FromInt64(v []int64) Point {
	p := make(Point, len(v))
	for i, c := range v {
		p[i] = int(c)
	}
	return p
}

// ChebyshevNorm returns max_i |p_i|, the ℓ∞ norm in coordinates.
func (p Point) ChebyshevNorm() int {
	m := 0
	for _, c := range p {
		if c < 0 {
			c = -c
		}
		if c > m {
			m = c
		}
	}
	return m
}

// ManhattanNorm returns Σ_i |p_i|, the ℓ1 norm in coordinates.
func (p Point) ManhattanNorm() int {
	s := 0
	for _, c := range p {
		if c < 0 {
			c = -c
		}
		s += c
	}
	return s
}

// SortPoints orders points lexicographically in place and returns the
// slice for convenience.
func SortPoints(pts []Point) []Point {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
	return pts
}

func mustSameDim(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("lattice: dimension mismatch %d vs %d", len(p), len(q)))
	}
}
