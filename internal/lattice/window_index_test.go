package lattice

import (
	"math"
	"math/rand"
	"testing"
)

// randomWindow draws a window of the given dimension with small random
// corners (possibly negative, possibly degenerate sides of length 1).
func randomWindow(rng *rand.Rand, dim int) Window {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := 0; i < dim; i++ {
		lo[i] = rng.Intn(11) - 5
		hi[i] = lo[i] + rng.Intn(5)
	}
	w, err := NewWindow(lo, hi)
	if err != nil {
		panic(err)
	}
	return w
}

func TestIndexOfPointAtBijection(t *testing.T) {
	// IndexOf and PointAt must be inverse bijections between the window's
	// points and [0, Size()), with IndexOf matching the lexicographic
	// position in Points().
	rng := rand.New(rand.NewSource(7))
	for dim := 1; dim <= 4; dim++ {
		for trial := 0; trial < 25; trial++ {
			w := randomWindow(rng, dim)
			pts := w.Points()
			if len(pts) != w.Size() {
				t.Fatalf("%v: %d points, Size %d", w, len(pts), w.Size())
			}
			for i, p := range pts {
				idx, ok := w.IndexOf(p)
				if !ok || idx != i {
					t.Fatalf("%v: IndexOf(%v) = (%d, %v), want (%d, true)", w, p, idx, ok, i)
				}
				if q := w.PointAt(i); !q.Equal(p) {
					t.Fatalf("%v: PointAt(%d) = %v, want %v", w, i, q, p)
				}
			}
		}
	}
}

func TestIndexOfRejectsOutside(t *testing.T) {
	w := mustWindow(Pt(-2, 1), Pt(3, 4))
	outside := []Point{
		Pt(-3, 2), Pt(4, 2), Pt(0, 0), Pt(0, 5), // out of range per axis
		Pt(0), Pt(0, 2, 0), // wrong dimension
	}
	for _, p := range outside {
		if _, ok := w.IndexOf(p); ok {
			t.Errorf("IndexOf(%v) accepted a point outside %v", p, w)
		}
	}
}

// mustWindow builds a window, panicking on malformed corners.
func mustWindow(lo, hi Point) Window {
	w, err := NewWindow(lo, hi)
	if err != nil {
		panic(err)
	}
	return w
}

func TestPointAtIntoReusesBuffer(t *testing.T) {
	w := mustWindow(Pt(0, 0, 0), Pt(2, 3, 4))
	buf := make(Point, 3)
	for i := 0; i < w.Size(); i++ {
		got := w.PointAtInto(i, buf)
		if &got[0] != &buf[0] {
			t.Fatal("PointAtInto allocated a new slice")
		}
		if idx, ok := w.IndexOf(got); !ok || idx != i {
			t.Fatalf("IndexOf(PointAtInto(%d)) = %d, %v", i, idx, ok)
		}
	}
}

func TestEachMatchesPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for dim := 1; dim <= 4; dim++ {
		w := randomWindow(rng, dim)
		pts := w.Points()
		i := 0
		w.Each(func(p Point) bool {
			if i >= len(pts) || !p.Equal(pts[i]) {
				t.Fatalf("Each visited %v at position %d, want %v", p, i, pts[i])
			}
			i++
			return true
		})
		if i != len(pts) {
			t.Fatalf("Each visited %d points, want %d", i, len(pts))
		}
		// Early termination stops the walk.
		count := 0
		w.Each(func(Point) bool { count++; return count < 2 })
		if want := min(2, len(pts)); count != want {
			t.Fatalf("Each visited %d points after early stop, want %d", count, want)
		}
	}
}

func TestSizeOverflow(t *testing.T) {
	// A window whose point count exceeds MaxInt must be reported by
	// SizeChecked and saturated by Size.
	big := mustWindow(Pt(0, 0), Pt(math.MaxInt/2, 10))
	if _, err := big.SizeChecked(); err == nil {
		t.Error("SizeChecked accepted an overflowing window")
	}
	if big.Size() != math.MaxInt {
		t.Errorf("Size = %d, want saturation at MaxInt", big.Size())
	}
	// A single side so long that Hi-Lo+1 itself wraps.
	wide := mustWindow(Pt(math.MinInt/2), Pt(math.MaxInt/2))
	if _, err := wide.SizeChecked(); err == nil {
		t.Error("SizeChecked accepted a side-length overflow")
	}
	// Sanity: a normal window is unaffected.
	ok := mustWindow(Pt(-1, -1), Pt(1, 1))
	if n, err := ok.SizeChecked(); err != nil || n != 9 {
		t.Errorf("SizeChecked = %d, %v, want 9, nil", n, err)
	}
}

func TestAddIntoSubInto(t *testing.T) {
	p, q := Pt(3, -1, 2), Pt(1, 5, -4)
	buf := make(Point, 0, 6)
	buf = p.AddInto(q, buf)
	buf = p.SubInto(q, buf)
	if !buf[:3].Equal(p.Add(q)) || !buf[3:].Equal(p.Sub(q)) {
		t.Fatalf("AddInto/SubInto packed %v, want %v then %v", buf, p.Add(q), p.Sub(q))
	}
}
