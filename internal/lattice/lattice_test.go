package lattice

import (
	"math"
	"testing"
)

func TestSquareLattice(t *testing.T) {
	l := Square()
	if l.Dim() != 2 {
		t.Fatalf("Dim = %d, want 2", l.Dim())
	}
	x := l.Embed(Pt(3, -2))
	if x[0] != 3 || x[1] != -2 {
		t.Errorf("Embed(3,-2) = %v", x)
	}
	if got := l.Norm2(Pt(3, 4)); math.Abs(got-25) > 1e-12 {
		t.Errorf("Norm2(3,4) = %v, want 25", got)
	}
	if got := l.CoVolume(); math.Abs(got-1) > 1e-12 {
		t.Errorf("CoVolume = %v, want 1", got)
	}
}

func TestHexagonalLattice(t *testing.T) {
	l := Hexagonal()
	// u1, u2, and u2-u1 all have unit length: the defining property of
	// the hexagonal lattice's minimal vectors.
	for _, p := range []Point{Pt(1, 0), Pt(0, 1), Pt(-1, 1)} {
		if got := l.Norm2(p); math.Abs(got-1) > 1e-12 {
			t.Errorf("Norm2(%v) = %v, want 1", p, got)
		}
	}
	// Fundamental domain area is √3/2.
	if got := l.CoVolume(); math.Abs(got-math.Sqrt(3)/2) > 1e-12 {
		t.Errorf("CoVolume = %v, want √3/2", got)
	}
	// Angle between u1 and u2 is 60°: u1·u2 = 1/2.
	g := l.Gram()
	if math.Abs(g[0][1]-0.5) > 1e-12 {
		t.Errorf("u1·u2 = %v, want 0.5", g[0][1])
	}
}

func TestCubicLattice(t *testing.T) {
	l := Cubic(3)
	if l.Dim() != 3 {
		t.Fatalf("Dim = %d", l.Dim())
	}
	if got := l.Norm2(Pt(1, 2, 2)); math.Abs(got-9) > 1e-12 {
		t.Errorf("Norm2 = %v, want 9", got)
	}
}

func TestNewRejectsDegenerate(t *testing.T) {
	if _, err := New("bad", [][]float64{{1, 0}, {2, 0}}); err == nil {
		t.Error("degenerate basis accepted")
	}
	if _, err := New("bad", nil); err == nil {
		t.Error("empty basis accepted")
	}
	if _, err := New("bad", [][]float64{{1, 0}, {0}}); err == nil {
		t.Error("ragged basis accepted")
	}
}

func TestNorm2MatchesEmbedding(t *testing.T) {
	l := Hexagonal()
	for _, p := range []Point{Pt(0, 0), Pt(2, 1), Pt(-3, 5), Pt(1, -1)} {
		x := l.Embed(p)
		want := x[0]*x[0] + x[1]*x[1]
		if got := l.Norm2(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Norm2(%v) = %v, embedding gives %v", p, got, want)
		}
	}
}

func TestDist2Symmetry(t *testing.T) {
	l := Hexagonal()
	p, q := Pt(1, 2), Pt(-3, 0)
	if math.Abs(l.Dist2(p, q)-l.Dist2(q, p)) > 1e-12 {
		t.Error("Dist2 not symmetric")
	}
	if l.Dist2(p, p) != 0 {
		t.Error("Dist2(p,p) != 0")
	}
}

func TestBasisCopy(t *testing.T) {
	l := Square()
	b := l.Basis()
	b[0][0] = 99
	if l.Basis()[0][0] != 1 {
		t.Error("Basis() exposes internal storage")
	}
	g := l.Gram()
	g[0][0] = 99
	if l.Gram()[0][0] != 1 {
		t.Error("Gram() exposes internal storage")
	}
}

func TestEmbedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Embed with wrong dim did not panic")
		}
	}()
	Square().Embed(Pt(1, 2, 3))
}
