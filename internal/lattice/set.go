package lattice

import (
	"fmt"
	"strings"
)

// Set is a finite set of lattice points with deterministic (lexicographic)
// iteration order. The zero value is an empty set ready for use via Add.
type Set struct {
	idx map[string]int
	pts []Point
}

// NewSet builds a set from points, deduplicating them.
func NewSet(pts ...Point) *Set {
	s := &Set{}
	for _, p := range pts {
		s.Add(p)
	}
	return s
}

// Add inserts p, reporting whether it was newly added.
func (s *Set) Add(p Point) bool {
	if s.idx == nil {
		s.idx = make(map[string]int)
	}
	k := p.Key()
	if _, ok := s.idx[k]; ok {
		return false
	}
	s.idx[k] = len(s.pts)
	s.pts = append(s.pts, p.Clone())
	return true
}

// Contains reports membership of p.
func (s *Set) Contains(p Point) bool {
	if s == nil || s.idx == nil {
		return false
	}
	_, ok := s.idx[p.Key()]
	return ok
}

// Size returns the number of points.
func (s *Set) Size() int {
	if s == nil {
		return 0
	}
	return len(s.pts)
}

// Points returns the points in lexicographic order (a fresh slice of
// fresh points).
func (s *Set) Points() []Point {
	out := make([]Point, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.Clone()
	}
	return SortPoints(out)
}

// Translate returns the set s + v.
func (s *Set) Translate(v Point) *Set {
	t := &Set{}
	for _, p := range s.pts {
		t.Add(p.Add(v))
	}
	return t
}

// Union returns s ∪ o.
func (s *Set) Union(o *Set) *Set {
	u := &Set{}
	for _, p := range s.pts {
		u.Add(p)
	}
	if o != nil {
		for _, p := range o.pts {
			u.Add(p)
		}
	}
	return u
}

// Intersect returns s ∩ o.
func (s *Set) Intersect(o *Set) *Set {
	u := &Set{}
	if o == nil {
		return u
	}
	for _, p := range s.pts {
		if o.Contains(p) {
			u.Add(p)
		}
	}
	return u
}

// Intersects reports whether s and o share a point, without materializing
// the intersection.
func (s *Set) Intersects(o *Set) bool {
	if s == nil || o == nil {
		return false
	}
	a, b := s, o
	if a.Size() > b.Size() {
		a, b = b, a
	}
	for _, p := range a.pts {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// Minus returns s \ o.
func (s *Set) Minus(o *Set) *Set {
	u := &Set{}
	for _, p := range s.pts {
		if o == nil || !o.Contains(p) {
			u.Add(p)
		}
	}
	return u
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s.Size() != o.Size() {
		return false
	}
	for _, p := range s.pts {
		if !o.Contains(p) {
			return false
		}
	}
	return true
}

// MinkowskiSum returns {a + b : a ∈ s, b ∈ o}; the paper's Conclusions use
// N + N to characterize finite regions on which optimality is preserved.
func (s *Set) MinkowskiSum(o *Set) *Set {
	u := &Set{}
	for _, a := range s.pts {
		for _, b := range o.pts {
			u.Add(a.Add(b))
		}
	}
	return u
}

// String renders the set's points in lexicographic order.
func (s *Set) String() string {
	pts := s.Points()
	parts := make([]string, len(pts))
	for i, p := range pts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// BoundingBox returns inclusive lower and upper corners of the set, or an
// error for an empty set.
func (s *Set) BoundingBox() (lo, hi Point, err error) {
	if s.Size() == 0 {
		return nil, nil, fmt.Errorf("lattice: bounding box of empty set")
	}
	lo = s.pts[0].Clone()
	hi = s.pts[0].Clone()
	for _, p := range s.pts[1:] {
		for i, c := range p {
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	return lo, hi, nil
}
