package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); !got.Equal(Pt(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Equal(Pt(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := q.Neg(); !got.Equal(Pt(-3, 4)) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Scale(-3); !got.Equal(Pt(-3, -6)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointAddDoesNotAlias(t *testing.T) {
	p, q := Pt(1, 1), Pt(2, 2)
	r := p.Add(q)
	r[0] = 99
	if p[0] != 1 || q[0] != 2 {
		t.Error("Add result aliases an operand")
	}
}

func TestPointGroupLaws(t *testing.T) {
	f := func(a, b, c [3]int8) bool {
		p := Pt(int(a[0]), int(a[1]), int(a[2]))
		q := Pt(int(b[0]), int(b[1]), int(b[2]))
		r := Pt(int(c[0]), int(c[1]), int(c[2]))
		// Associativity, commutativity, inverse.
		if !p.Add(q.Add(r)).Equal(p.Add(q).Add(r)) {
			return false
		}
		if !p.Add(q).Equal(q.Add(p)) {
			return false
		}
		return p.Add(p.Neg()).IsOrigin()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPointOrder(t *testing.T) {
	if !Pt(0, 1).Less(Pt(1, 0)) {
		t.Error("(0,1) should be less than (1,0)")
	}
	if Pt(1, 0).Less(Pt(1, 0)) {
		t.Error("point less than itself")
	}
	if !Pt(1, -1).Less(Pt(1, 0)) {
		t.Error("(1,-1) should be less than (1,0)")
	}
}

func TestPointKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[string]Point{}
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Intn(21)-10, rng.Intn(21)-10, rng.Intn(21)-10)
		if q, ok := seen[p.Key()]; ok && !q.Equal(p) {
			t.Fatalf("key collision: %v and %v -> %q", p, q, p.Key())
		}
		seen[p.Key()] = p
	}
	if Pt(1, -2).Key() != "1,-2" {
		t.Errorf("Key = %q, want \"1,-2\"", Pt(1, -2).Key())
	}
}

func TestPointNorms(t *testing.T) {
	p := Pt(3, -4)
	if p.ChebyshevNorm() != 4 {
		t.Errorf("ChebyshevNorm = %d, want 4", p.ChebyshevNorm())
	}
	if p.ManhattanNorm() != 7 {
		t.Errorf("ManhattanNorm = %d, want 7", p.ManhattanNorm())
	}
	if Origin(2).ChebyshevNorm() != 0 || Origin(2).ManhattanNorm() != 0 {
		t.Error("origin norms should be 0")
	}
}

func TestPointString(t *testing.T) {
	if got, want := Pt(1, -2).String(), "(1, -2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	p := Pt(7, -3, 0)
	if got := FromInt64(p.Int64()); !got.Equal(p) {
		t.Errorf("round trip = %v, want %v", got, p)
	}
}

func TestSortPoints(t *testing.T) {
	pts := []Point{Pt(1, 0), Pt(0, 1), Pt(0, 0), Pt(-1, 5)}
	SortPoints(pts)
	want := []Point{Pt(-1, 5), Pt(0, 0), Pt(0, 1), Pt(1, 0)}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Fatalf("sorted = %v, want %v", pts, want)
		}
	}
}

func TestMismatchedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched dims did not panic")
		}
	}()
	Pt(1, 2).Add(Pt(1))
}
