package lattice

import "testing"

func TestWindowBasics(t *testing.T) {
	w, err := NewWindow(Pt(-1, 0), Pt(1, 2))
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	if w.Size() != 9 {
		t.Errorf("Size = %d, want 9", w.Size())
	}
	if !w.Contains(Pt(0, 1)) || w.Contains(Pt(2, 0)) || w.Contains(Pt(0, 3)) {
		t.Error("Contains wrong")
	}
	if w.Contains(Pt(0)) {
		t.Error("Contains accepted wrong dimension")
	}
}

func TestWindowErrors(t *testing.T) {
	if _, err := NewWindow(Pt(1, 0), Pt(0, 0)); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := NewWindow(Pt(0), Pt(0, 0)); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := NewWindow(Pt(), Pt()); err == nil {
		t.Error("zero-dimensional window accepted")
	}
	if _, err := BoxWindow(3, 0); err == nil {
		t.Error("BoxWindow with zero side accepted")
	}
}

func TestWindowPointsEnumeration(t *testing.T) {
	w, _ := NewWindow(Pt(0, 0), Pt(1, 2))
	pts := w.Points()
	if len(pts) != w.Size() {
		t.Fatalf("len(Points) = %d, want %d", len(pts), w.Size())
	}
	// Lexicographic and complete.
	seen := NewSet(pts...)
	if seen.Size() != len(pts) {
		t.Error("duplicate points in enumeration")
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Less(pts[i]) {
			t.Fatalf("points not in order: %v before %v", pts[i-1], pts[i])
		}
	}
	for x := 0; x <= 1; x++ {
		for y := 0; y <= 2; y++ {
			if !seen.Contains(Pt(x, y)) {
				t.Errorf("missing point (%d,%d)", x, y)
			}
		}
	}
}

func TestCenteredWindow(t *testing.T) {
	w := CenteredWindow(3, 2)
	if w.Dim() != 3 {
		t.Fatalf("Dim = %d", w.Dim())
	}
	if w.Size() != 125 {
		t.Errorf("Size = %d, want 125", w.Size())
	}
	if !w.Contains(Pt(-2, 0, 2)) || w.Contains(Pt(3, 0, 0)) {
		t.Error("Contains wrong")
	}
}

func TestBoxWindow(t *testing.T) {
	w, err := BoxWindow(4, 5)
	if err != nil {
		t.Fatalf("BoxWindow: %v", err)
	}
	if w.Size() != 20 {
		t.Errorf("Size = %d, want 20", w.Size())
	}
	if !w.Contains(Pt(0, 0)) || !w.Contains(Pt(3, 4)) || w.Contains(Pt(4, 0)) {
		t.Error("Contains wrong")
	}
}

func TestWindowShrink(t *testing.T) {
	w := CenteredWindow(2, 3)
	s, err := w.Shrink(1)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if !s.Contains(Pt(2, 2)) || s.Contains(Pt(3, 0)) {
		t.Error("Shrink wrong")
	}
	if _, err := w.Shrink(4); err == nil {
		t.Error("over-shrink accepted")
	}
}

func TestContainsTranslateOf(t *testing.T) {
	w, _ := BoxWindow(5, 5)
	// A 3x3 set fits anywhere in a 5x5 window.
	block := NewSet()
	for x := 10; x < 13; x++ {
		for y := -2; y < 1; y++ {
			block.Add(Pt(x, y))
		}
	}
	if !w.ContainsTranslateOf(block) {
		t.Error("3x3 set should fit in 5x5 window")
	}
	// A 6-wide set does not.
	wide := NewSet(Pt(0, 0), Pt(5, 0))
	if w.ContainsTranslateOf(wide) {
		t.Error("6-wide set cannot fit in 5x5 window")
	}
	// Exactly filling fits.
	exact := NewSet(Pt(0, 0), Pt(4, 4))
	if !w.ContainsTranslateOf(exact) {
		t.Error("5-wide diagonal pair should fit exactly")
	}
	// Empty set: vacuously false by the documented convention.
	if w.ContainsTranslateOf(NewSet()) {
		t.Error("empty set reported as contained")
	}
}

func TestContainsTranslateOfCrossNPlusN(t *testing.T) {
	// The cross's N+N spans a 5x5 bounding box: the 5x5 window contains
	// a translate, the 4x4 does not (the Conclusions threshold used by
	// experiment E5).
	cross := NewSet(Pt(0, 0), Pt(1, 0), Pt(-1, 0), Pt(0, 1), Pt(0, -1))
	nn := cross.MinkowskiSum(cross)
	w5, _ := BoxWindow(5, 5)
	w4, _ := BoxWindow(4, 4)
	if !w5.ContainsTranslateOf(nn) {
		t.Error("5x5 window should contain N+N of the cross")
	}
	if w4.ContainsTranslateOf(nn) {
		t.Error("4x4 window cannot contain N+N of the cross")
	}
}

func TestWindowContainsSet(t *testing.T) {
	w := CenteredWindow(2, 1)
	if !w.ContainsSet(NewSet(Pt(0, 0), Pt(1, 1))) {
		t.Error("ContainsSet = false, want true")
	}
	if w.ContainsSet(NewSet(Pt(0, 0), Pt(2, 0))) {
		t.Error("ContainsSet = true, want false")
	}
}
