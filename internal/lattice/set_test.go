package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(Pt(0, 0), Pt(1, 0), Pt(0, 0))
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (dedup)", s.Size())
	}
	if !s.Contains(Pt(1, 0)) || s.Contains(Pt(9, 9)) {
		t.Error("Contains wrong")
	}
	if !s.Add(Pt(2, 2)) {
		t.Error("Add of new point returned false")
	}
	if s.Add(Pt(2, 2)) {
		t.Error("Add of existing point returned true")
	}
}

func TestSetPointsSortedAndFresh(t *testing.T) {
	s := NewSet(Pt(1, 0), Pt(0, 1), Pt(-1, 0))
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Less(pts[i]) {
			t.Fatalf("Points not sorted: %v", pts)
		}
	}
	pts[0][0] = 99
	if s.Contains(Pt(99, 0)) {
		t.Error("mutating Points() result affected the set")
	}
}

func TestSetTranslate(t *testing.T) {
	s := NewSet(Pt(0, 0), Pt(1, 1))
	tr := s.Translate(Pt(2, -1))
	if !tr.Contains(Pt(2, -1)) || !tr.Contains(Pt(3, 0)) || tr.Size() != 2 {
		t.Errorf("Translate = %v", tr)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(Pt(0, 0), Pt(1, 0))
	b := NewSet(Pt(1, 0), Pt(2, 0))
	if got := a.Union(b); got.Size() != 3 {
		t.Errorf("Union size = %d, want 3", got.Size())
	}
	if got := a.Intersect(b); got.Size() != 1 || !got.Contains(Pt(1, 0)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.Size() != 1 || !got.Contains(Pt(0, 0)) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(NewSet(Pt(5, 5))) {
		t.Error("Intersects = true, want false")
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(Pt(0, 0), Pt(1, 2))
	b := NewSet(Pt(1, 2), Pt(0, 0))
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	b.Add(Pt(3, 3))
	if a.Equal(b) {
		t.Error("sets of different size equal")
	}
}

func TestMinkowskiSum(t *testing.T) {
	// {0,1} + {0,1} = {0,1,2} in Z^1.
	a := NewSet(Pt(0), Pt(1))
	s := a.MinkowskiSum(a)
	want := NewSet(Pt(0), Pt(1), Pt(2))
	if !s.Equal(want) {
		t.Errorf("MinkowskiSum = %v, want %v", s, want)
	}
}

func TestMinkowskiSumSizeBounds(t *testing.T) {
	f := func(raw [6][2]int8) bool {
		s := NewSet()
		for _, c := range raw {
			s.Add(Pt(int(c[0]), int(c[1])))
		}
		m := s.MinkowskiSum(s)
		// |S+S| ≥ |S| (translate embedding) and ≤ |S|².
		return m.Size() >= s.Size() && m.Size() <= s.Size()*s.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	s := NewSet(Pt(1, -2), Pt(-3, 4), Pt(0, 0))
	lo, hi, err := s.BoundingBox()
	if err != nil {
		t.Fatalf("BoundingBox: %v", err)
	}
	if !lo.Equal(Pt(-3, -2)) || !hi.Equal(Pt(1, 4)) {
		t.Errorf("BoundingBox = %v..%v", lo, hi)
	}
	if _, _, err := NewSet().BoundingBox(); err == nil {
		t.Error("BoundingBox of empty set succeeded")
	}
}

func TestSetTranslationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		s := NewSet()
		for i := 0; i < 5; i++ {
			s.Add(Pt(rng.Intn(9)-4, rng.Intn(9)-4))
		}
		v := Pt(rng.Intn(9)-4, rng.Intn(9)-4)
		tr := s.Translate(v)
		if tr.Size() != s.Size() {
			t.Fatal("translation changed cardinality")
		}
		back := tr.Translate(v.Neg())
		if !back.Equal(s) {
			t.Fatal("translate round trip failed")
		}
	}
}

func TestNilSetSafety(t *testing.T) {
	var s *Set
	if s.Contains(Pt(0, 0)) {
		t.Error("nil set contains a point")
	}
	if s.Size() != 0 {
		t.Error("nil set has nonzero size")
	}
}
