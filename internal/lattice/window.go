package lattice

import (
	"fmt"
	"math"
)

// Window is an axis-aligned box of coordinates, inclusive on both ends:
// {p : Lo_i ≤ p_i ≤ Hi_i}. Windows model the finite deployment regions D
// from the paper's Conclusions.
type Window struct {
	Lo, Hi Point
}

// NewWindow builds a window from inclusive corners, validating shape.
func NewWindow(lo, hi Point) (Window, error) {
	if len(lo) != len(hi) {
		return Window{}, fmt.Errorf("lattice: window corners have dimensions %d and %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Window{}, fmt.Errorf("lattice: zero-dimensional window")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Window{}, fmt.Errorf("lattice: window corner %d inverted: %d > %d", i, lo[i], hi[i])
		}
	}
	return Window{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// CenteredWindow returns the window [-r, r]^dim.
func CenteredWindow(dim, r int) Window {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := range lo {
		lo[i], hi[i] = -r, r
	}
	return Window{Lo: lo, Hi: hi}
}

// BoxWindow returns the window [0, n_i-1] in each axis for side lengths n.
func BoxWindow(sides ...int) (Window, error) {
	lo := make(Point, len(sides))
	hi := make(Point, len(sides))
	for i, n := range sides {
		if n <= 0 {
			return Window{}, fmt.Errorf("lattice: window side %d is %d, want > 0", i, n)
		}
		hi[i] = n - 1
	}
	return NewWindow(lo, hi)
}

// Dim returns the window's dimension.
func (w Window) Dim() int { return len(w.Lo) }

// Size returns the number of lattice points in the window, saturating at
// math.MaxInt when the true count does not fit in an int. Callers that
// must distinguish a huge window from an unrepresentable one should use
// SizeChecked.
func (w Window) Size() int {
	n, err := w.SizeChecked()
	if err != nil {
		return math.MaxInt
	}
	return n
}

// SizeChecked returns the number of lattice points in the window, or an
// error when that count overflows an int (possible for large or
// high-dimensional windows, whose side product grows geometrically).
func (w Window) SizeChecked() (int, error) {
	n := 1
	for i := range w.Lo {
		side := w.Hi[i] - w.Lo[i] + 1
		if side <= 0 {
			// Hi - Lo itself overflowed (e.g. Lo near MinInt, Hi near
			// MaxInt); the true side length exceeds MaxInt.
			return 0, fmt.Errorf("lattice: window side %d overflows int", i)
		}
		if n > math.MaxInt/side {
			return 0, fmt.Errorf("lattice: window size overflows int (%d sides in, partial product %d × side %d)", i+1, n, side)
		}
		n *= side
	}
	return n, nil
}

// IndexOf returns the dense index of p in the window's lexicographic point
// order — the mixed-radix number with digit p_i - Lo_i in base
// Hi_i - Lo_i + 1 — and whether p lies in the window. It is the inverse of
// PointAt and allocates nothing, so it replaces string-keyed maps on hot
// lookup paths.
func (w Window) IndexOf(p Point) (int, bool) {
	if len(p) != len(w.Lo) {
		return 0, false
	}
	idx := 0
	for i, c := range p {
		if c < w.Lo[i] || c > w.Hi[i] {
			return 0, false
		}
		idx = idx*(w.Hi[i]-w.Lo[i]+1) + (c - w.Lo[i])
	}
	return idx, true
}

// PointAt returns the i-th point of the window in lexicographic order,
// inverting IndexOf. It panics when i is outside [0, Size()).
func (w Window) PointAt(i int) Point {
	return w.PointAtInto(i, make(Point, len(w.Lo)))
}

// PointAtInto is PointAt writing into dst, which must have length Dim();
// it returns dst. Use it to walk a window without per-point allocation.
func (w Window) PointAtInto(i int, dst Point) Point {
	if i < 0 {
		panic(fmt.Sprintf("lattice: window index %d out of range", i))
	}
	if len(dst) != len(w.Lo) {
		panic(fmt.Sprintf("lattice: PointAtInto buffer has dimension %d, want %d", len(dst), len(w.Lo)))
	}
	for a := len(w.Lo) - 1; a >= 0; a-- {
		side := w.Hi[a] - w.Lo[a] + 1
		dst[a] = w.Lo[a] + i%side
		i /= side
	}
	if i != 0 {
		panic("lattice: window index out of range")
	}
	return dst
}

// Each calls f for every window point in lexicographic order until f
// returns false. The point passed to f is a shared buffer that is reused
// between calls: callers must Clone it before retaining it. Each visits
// the same sequence as Points without materializing it.
func (w Window) Each(f func(p Point) bool) {
	cur := w.Lo.Clone()
	for {
		if !f(cur) {
			return
		}
		i := len(cur) - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= w.Hi[i] {
				break
			}
			cur[i] = w.Lo[i]
			i--
		}
		if i < 0 {
			return
		}
	}
}

// Contains reports whether p lies in the window.
func (w Window) Contains(p Point) bool {
	if len(p) != len(w.Lo) {
		return false
	}
	for i, c := range p {
		if c < w.Lo[i] || c > w.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsSet reports whether every point of s lies in the window.
func (w Window) ContainsSet(s *Set) bool {
	for _, p := range s.Points() {
		if !w.Contains(p) {
			return false
		}
	}
	return true
}

// Points enumerates the window's points in lexicographic order.
func (w Window) Points() []Point {
	out := make([]Point, 0, w.Size())
	cur := w.Lo.Clone()
	for {
		out = append(out, cur.Clone())
		i := len(cur) - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= w.Hi[i] {
				break
			}
			cur[i] = w.Lo[i]
			i--
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Shrink returns the window shrunk by margin on every side; used to find
// interior points whose whole neighborhood stays inside the window.
func (w Window) Shrink(margin int) (Window, error) {
	lo := w.Lo.Clone()
	hi := w.Hi.Clone()
	for i := range lo {
		lo[i] += margin
		hi[i] -= margin
	}
	return NewWindow(lo, hi)
}

// ContainsTranslateOf reports whether some translate v + s of the set fits
// entirely inside the window. The paper's Conclusions show a finite
// deployment region keeps the tiling schedule optimal exactly when it
// contains a translate of N + N.
func (w Window) ContainsTranslateOf(s *Set) bool {
	lo, hi, err := s.BoundingBox()
	if err != nil {
		return false // empty set: vacuously false, matching "no sensors"
	}
	// v must satisfy w.Lo ≤ v + lo and v + hi ≤ w.Hi; because the window
	// is a box and the set's bounding box determines feasibility, any v
	// in that range works for the bounding box, but the set itself is a
	// subset of its box, so one candidate suffices.
	v := w.Lo.Sub(lo)
	for i := range v {
		if v[i]+hi[i] > w.Hi[i] {
			return false
		}
	}
	return true
}

// String renders the window as "[lo .. hi]".
func (w Window) String() string {
	return fmt.Sprintf("[%s .. %s]", w.Lo, w.Hi)
}
