package lattice

import "fmt"

// Window is an axis-aligned box of coordinates, inclusive on both ends:
// {p : Lo_i ≤ p_i ≤ Hi_i}. Windows model the finite deployment regions D
// from the paper's Conclusions.
type Window struct {
	Lo, Hi Point
}

// NewWindow builds a window from inclusive corners, validating shape.
func NewWindow(lo, hi Point) (Window, error) {
	if len(lo) != len(hi) {
		return Window{}, fmt.Errorf("lattice: window corners have dimensions %d and %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Window{}, fmt.Errorf("lattice: zero-dimensional window")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Window{}, fmt.Errorf("lattice: window corner %d inverted: %d > %d", i, lo[i], hi[i])
		}
	}
	return Window{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// CenteredWindow returns the window [-r, r]^dim.
func CenteredWindow(dim, r int) Window {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := range lo {
		lo[i], hi[i] = -r, r
	}
	return Window{Lo: lo, Hi: hi}
}

// BoxWindow returns the window [0, n_i-1] in each axis for side lengths n.
func BoxWindow(sides ...int) (Window, error) {
	lo := make(Point, len(sides))
	hi := make(Point, len(sides))
	for i, n := range sides {
		if n <= 0 {
			return Window{}, fmt.Errorf("lattice: window side %d is %d, want > 0", i, n)
		}
		hi[i] = n - 1
	}
	return NewWindow(lo, hi)
}

// Dim returns the window's dimension.
func (w Window) Dim() int { return len(w.Lo) }

// Size returns the number of lattice points in the window.
func (w Window) Size() int {
	n := 1
	for i := range w.Lo {
		n *= w.Hi[i] - w.Lo[i] + 1
	}
	return n
}

// Contains reports whether p lies in the window.
func (w Window) Contains(p Point) bool {
	if len(p) != len(w.Lo) {
		return false
	}
	for i, c := range p {
		if c < w.Lo[i] || c > w.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsSet reports whether every point of s lies in the window.
func (w Window) ContainsSet(s *Set) bool {
	for _, p := range s.Points() {
		if !w.Contains(p) {
			return false
		}
	}
	return true
}

// Points enumerates the window's points in lexicographic order.
func (w Window) Points() []Point {
	out := make([]Point, 0, w.Size())
	cur := w.Lo.Clone()
	for {
		out = append(out, cur.Clone())
		i := len(cur) - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= w.Hi[i] {
				break
			}
			cur[i] = w.Lo[i]
			i--
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Shrink returns the window shrunk by margin on every side; used to find
// interior points whose whole neighborhood stays inside the window.
func (w Window) Shrink(margin int) (Window, error) {
	lo := w.Lo.Clone()
	hi := w.Hi.Clone()
	for i := range lo {
		lo[i] += margin
		hi[i] -= margin
	}
	return NewWindow(lo, hi)
}

// ContainsTranslateOf reports whether some translate v + s of the set fits
// entirely inside the window. The paper's Conclusions show a finite
// deployment region keeps the tiling schedule optimal exactly when it
// contains a translate of N + N.
func (w Window) ContainsTranslateOf(s *Set) bool {
	lo, hi, err := s.BoundingBox()
	if err != nil {
		return false // empty set: vacuously false, matching "no sensors"
	}
	// v must satisfy w.Lo ≤ v + lo and v + hi ≤ w.Hi; because the window
	// is a box and the set's bounding box determines feasibility, any v
	// in that range works for the bounding box, but the set itself is a
	// subset of its box, so one candidate suffices.
	v := w.Lo.Sub(lo)
	for i := range v {
		if v[i]+hi[i] > w.Hi[i] {
			return false
		}
	}
	return true
}

// String renders the window as "[lo .. hi]".
func (w Window) String() string {
	return fmt.Sprintf("[%s .. %s]", w.Lo, w.Hi)
}
