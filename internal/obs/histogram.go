package obs

import "math/bits"

// NumBuckets is the fixed bucket count of every Histogram: bucket i
// holds values whose binary length is i (i.e. v in [2^(i-1), 2^i), with
// bucket 0 holding exactly v = 0), and the last bucket absorbs
// everything at or above 2^(NumBuckets-2). For nanosecond latencies the
// range spans 1 ns to ~4.6 minutes at ≤2× resolution — the precomputed
// log2 bucket index is what keeps Record at a few atomic adds.
const NumBuckets = 40

// Histogram is a fixed-bucket log2 histogram recorded with atomic adds:
// no locks, no allocations, safe to call per batch on the engine path.
// The zero value is ready to use. Values are unsigned (a duration in
// nanoseconds, a batch size); bucket boundaries are powers of two.
type Histogram struct {
	count   Counter
	sum     Counter
	buckets [NumBuckets]Counter
}

// bucketOf returns the bucket index of v: its binary length, clamped to
// the last bucket.
func bucketOf(v uint64) int {
	i := bits.Len64(v)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i, 2^i − 1.
// The last bucket is unbounded (rendered as le="+Inf").
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Record adds one observation. Three atomic adds: the bucket, the sum,
// and the count. Safe for any number of concurrent callers.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)].Inc()
	h.sum.Add(v)
	h.count.Inc()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot captures the histogram's current state with one atomic load
// per bucket. Concurrent recorders may land between loads, so the
// snapshot is weakly consistent (Count may differ from the bucket total
// by in-flight records); every individual value is torn-free.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the input to
// percentile estimation and exposition.
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations.
	Count, Sum uint64
	// Buckets[i] counts observations of binary length i (see NumBuckets).
	Buckets [NumBuckets]uint64
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded values
// by linear interpolation inside the containing log2 bucket — exact to
// within the bucket's 2× width, which is the standard trade of a
// fixed-bucket histogram. Returns 0 when nothing was recorded.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(uint64(1)<<uint(i)) - 1
			if i >= NumBuckets-1 {
				hi = lo * 2 // open-ended tail: assume one bucket width
			}
			frac := 0.0
			if b > 0 {
				frac = (rank - cum) / float64(b)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(uint64(1) << uint(NumBuckets-1))
}
