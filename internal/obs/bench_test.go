package obs

import "testing"

// The record path's cost budget: every recorder below runs on the
// serving hot path, so each must stay a few nanoseconds and 0 allocs/op
// (the alloc half of the contract is pinned by TestRecordZeroAlloc).

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}

func BenchmarkTopKRecordHit(b *testing.B) {
	t := NewTopK(8)
	t.Record("square|cross:2:1", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record("square|cross:2:1", 4096)
	}
}
