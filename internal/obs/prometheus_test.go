package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is the test-side exposition parser: series name
// (labels included) → value, plus family → declared type. Formats this
// package writes must round-trip through it.
func parseExposition(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	values := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, kind, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := types[fam]; dup && prev != kind {
				t.Fatalf("family %q declared both %q and %q", fam, prev, kind)
			}
			types[fam] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("series %q: bad value: %v", line, err)
		}
		if _, dup := values[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		values[line[:i]] = v
	}
	return values, types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{endpoint="slots",codec="json"}`).Add(3)
	r.Counter(`req_total{endpoint="slots",codec="bin"}`).Add(2)
	r.Gauge("live").Set(7)
	h := r.Histogram(`lat_ns{endpoint="slots"}`)
	h.Record(100) // bucket 7 (le 127)
	h.Record(200) // bucket 8 (le 255)
	h.Record(200)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	values, types := parseExposition(t, text)

	if types["req_total"] != "counter" || types["live"] != "gauge" || types["lat_ns"] != "histogram" {
		t.Fatalf("types %v", types)
	}
	if values[`req_total{endpoint="slots",codec="json"}`] != 3 ||
		values[`req_total{endpoint="slots",codec="bin"}`] != 2 {
		t.Fatalf("counter series wrong: %v", values)
	}
	if values["live"] != 7 {
		t.Fatalf("gauge = %v", values["live"])
	}
	// Histogram: cumulative buckets, sum, count, labels preserved with
	// le appended.
	if values[`lat_ns_bucket{endpoint="slots",le="127"}`] != 1 {
		t.Fatalf("le=127 bucket: %v", values)
	}
	if values[`lat_ns_bucket{endpoint="slots",le="255"}`] != 3 {
		t.Fatalf("le=255 bucket not cumulative: %v", values)
	}
	if values[`lat_ns_bucket{endpoint="slots",le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket: %v", values)
	}
	if values[`lat_ns_sum{endpoint="slots"}`] != 500 || values[`lat_ns_count{endpoint="slots"}`] != 3 {
		t.Fatalf("sum/count: %v", values)
	}

	// One TYPE line per family, before any of its series.
	if strings.Count(text, "# TYPE req_total ") != 1 {
		t.Fatalf("req_total TYPE emitted more than once:\n%s", text)
	}
	typeIdx := strings.Index(text, "# TYPE req_total ")
	seriesIdx := strings.Index(text, `req_total{`)
	if seriesIdx < typeIdx {
		t.Fatal("series emitted before its TYPE line")
	}
}

// TestBucketOrder pins the OpenMetrics bucket-ordering contract at the
// byte level: within one histogram's series, `_bucket` lines appear in
// numeric le order with +Inf last. Lexicographic name sorting — the old
// behavior — would emit `+Inf` first and `1023` before `127`.
func TestBucketOrder(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_ns{endpoint="slots"}`)
	h.Record(100)   // le 127
	h.Record(1000)  // le 1023
	h.Record(10000) // le 16383
	// A second label set in the same family must stay contiguous, with
	// its own buckets independently ordered.
	h2 := r.Histogram(`lat_ns{endpoint="mutate"}`)
	h2.Record(100)
	h2.Record(1000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, group := range [][]string{
		{
			`lat_ns_bucket{endpoint="slots",le="127"}`,
			`lat_ns_bucket{endpoint="slots",le="1023"}`,
			`lat_ns_bucket{endpoint="slots",le="16383"}`,
			`lat_ns_bucket{endpoint="slots",le="+Inf"}`,
		},
		{
			`lat_ns_bucket{endpoint="mutate",le="127"}`,
			`lat_ns_bucket{endpoint="mutate",le="1023"}`,
			`lat_ns_bucket{endpoint="mutate",le="+Inf"}`,
		},
	} {
		prev := -1
		for _, series := range group {
			idx := strings.Index(text, series+" ")
			if idx < 0 {
				t.Fatalf("series %s missing:\n%s", series, text)
			}
			if idx < prev {
				t.Fatalf("series %s out of numeric le order:\n%s", series, text)
			}
			prev = idx
		}
	}

	// Contiguity: between a label set's first bucket and its +Inf there
	// must be no line from another label set.
	first := strings.Index(text, `lat_ns_bucket{endpoint="mutate",le="127"}`)
	last := strings.Index(text, `lat_ns_bucket{endpoint="mutate",le="+Inf"}`)
	if strings.Contains(text[first:last], `endpoint="slots"`) {
		t.Fatalf("bucket groups interleaved:\n%s", text)
	}

	// Parseability and cumulative values survive the reordering.
	values, _ := parseExposition(t, text)
	if values[`lat_ns_bucket{endpoint="slots",le="16383"}`] != 3 ||
		values[`lat_ns_bucket{endpoint="slots",le="+Inf"}`] != 3 {
		t.Fatalf("cumulative values wrong: %v", values)
	}
}

func TestWriteTopK(t *testing.T) {
	tk := NewTopK(4)
	tk.Record(`sig"with\quotes`, 9)
	tk.Record("plain", 4)
	var sb strings.Builder
	if err := WriteTopK(&sb, "plan_points_total", "signature", tk); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, sb.String())
	if types["plan_points_total"] != "counter" {
		t.Fatalf("types %v", types)
	}
	if values[`plan_points_total{signature="plain"}`] != 4 {
		t.Fatalf("plain series: %v", values)
	}
	if values[`plan_points_total{signature="sig\"with\\quotes"}`] != 9 {
		t.Fatalf("escaped series: %v", values)
	}

	// An empty sketch writes nothing (no dangling TYPE line).
	sb.Reset()
	if err := WriteTopK(&sb, "empty", "k", NewTopK(1)); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty sketch wrote %q", sb.String())
	}
}

func TestWriteGoRuntime(t *testing.T) {
	var sb strings.Builder
	if err := WriteGoRuntime(&sb); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, sb.String())
	if values["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", values["go_goroutines"])
	}
	if values["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap alloc = %v", values["go_memstats_heap_alloc_bytes"])
	}
	for _, fam := range []string{"go_gc_cycles_total", "go_gc_pause_seconds_total", "go_memstats_alloc_bytes_total"} {
		if types[fam] != "counter" {
			t.Fatalf("%s type %q", fam, types[fam])
		}
	}
}
