package obs

import (
	"sort"
	"sync"
)

// TopK tracks the heaviest keys of an unbounded key space within a
// fixed memory budget — per-plan-signature traffic in the serving
// stack, where the signature space is client-controlled and must not
// grow server state without bound. It implements the space-saving
// sketch: at most capacity keys are tracked; when a new key arrives at
// capacity, the minimum-count key is evicted and the newcomer inherits
// its count (so heavy keys are never undercounted, light keys may be
// overcounted by at most the evicted minimum — the standard guarantee).
//
// Record takes a mutex, so TopK belongs on per-request paths (one
// Record per request), not per-point hot loops.
type TopK struct {
	mu     sync.Mutex
	cap    int
	counts map[string]uint64
}

// TopKEntry is one tracked key and its (possibly overcounted) total.
type TopKEntry struct {
	// Key is the tracked key; Count its space-saving count.
	Key   string
	Count uint64
}

// NewTopK returns a sketch tracking at most capacity keys (minimum 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{cap: capacity, counts: make(map[string]uint64, capacity)}
}

// Record adds n to key's count, evicting the minimum-count key if the
// sketch is full and key is new. Safe for concurrent callers.
func (t *TopK) Record(key string, n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.counts[key]; ok {
		t.counts[key] += n
		return
	}
	if len(t.counts) < t.cap {
		t.counts[key] = n
		return
	}
	minKey, minCount := "", ^uint64(0)
	for k, c := range t.counts {
		if c < minCount {
			minKey, minCount = k, c
		}
	}
	delete(t.counts, minKey)
	t.counts[key] = minCount + n
}

// Snapshot returns the tracked entries sorted by descending count (ties
// by key, so the order is deterministic).
func (t *TopK) Snapshot() []TopKEntry {
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, TopKEntry{Key: k, Count: c})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
