package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestTopKBasicCounts(t *testing.T) {
	tk := NewTopK(4)
	tk.Record("a", 3)
	tk.Record("b", 1)
	tk.Record("a", 2)
	got := tk.Snapshot()
	want := []TopKEntry{{Key: "a", Count: 5}, {Key: "b", Count: 1}}
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTopKEviction pins the space-saving contract at capacity: the
// minimum-count key is evicted, the newcomer inherits its count (so a
// heavy key is never undercounted), and the sketch never exceeds its
// capacity.
func TestTopKEviction(t *testing.T) {
	tk := NewTopK(2)
	tk.Record("heavy", 100)
	tk.Record("light", 1)
	tk.Record("new", 5)

	got := tk.Snapshot()
	if len(got) != 2 {
		t.Fatalf("tracked %d keys, want capacity 2: %v", len(got), got)
	}
	if got[0] != (TopKEntry{Key: "heavy", Count: 100}) {
		t.Fatalf("heavy key perturbed by eviction: %v", got[0])
	}
	// "light" (the minimum, count 1) was evicted; "new" inherits that
	// count: 1 + 5.
	if got[1] != (TopKEntry{Key: "new", Count: 6}) {
		t.Fatalf("newcomer = %v, want inherited count 6", got[1])
	}
	for _, e := range got {
		if e.Key == "light" {
			t.Fatal("minimum key survived eviction")
		}
	}

	// An existing key at capacity increments in place — no eviction.
	tk.Record("heavy", 1)
	got = tk.Snapshot()
	if got[0].Count != 101 || len(got) != 2 {
		t.Fatalf("in-place increment at capacity: %v", got)
	}
}

// TestTopKNeverUndercountsHeavy drives an adversarial churn of light
// keys past a persistent heavy key: whatever gets evicted, the heavy
// key's reported count must be at least its true total.
func TestTopKNeverUndercountsHeavy(t *testing.T) {
	tk := NewTopK(4)
	const heavyTotal = 50
	for i := 0; i < heavyTotal; i++ {
		tk.Record("heavy", 1)
		tk.Record(fmt.Sprintf("light-%d", i), 1)
	}
	for _, e := range tk.Snapshot() {
		if e.Key == "heavy" {
			if e.Count < heavyTotal {
				t.Fatalf("heavy undercounted: %d < %d", e.Count, heavyTotal)
			}
			return
		}
	}
	t.Fatal("heavy key evicted despite dominating the stream")
}

func TestWriteGoRuntimeFamilies(t *testing.T) {
	var b strings.Builder
	if err := WriteGoRuntime(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_heap_inuse_bytes",
		"go_memstats_stack_inuse_bytes",
		"go_memstats_next_gc_bytes",
		"go_memstats_mallocs_total",
		"go_memstats_frees_total",
		"go_gc_cycles_total",
		"go_gc_pause_seconds_total",
		"go_gc_last_pause_seconds",
		"go_gc_cpu_fraction",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing family %s", name)
		}
	}
}
