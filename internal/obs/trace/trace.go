// Package trace is a low-overhead span recorder for epoch-propagation
// tracing (DESIGN.md §14). A Recorder samples requests at a configurable
// 1-in-N rate (with a forced path for always-sample-on-slow), hands out
// pooled *Trace builders stamped with monotonic timestamps, and publishes
// finished traces into a lock-free ring buffer of recent traces that
// /debug/traces renders as JSON.
//
// The untraced hot path costs one atomic load and zero allocations: an
// unsampled Start returns a nil *Trace, and every *Trace method is a
// nil-receiver-safe no-op. Traces stay mutable after Finish so late
// per-subscriber delivery spans can attach to an already-published epoch
// trace; Snapshot copies each trace under its lock, so concurrent
// readers always observe an internally consistent view.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 16-byte W3C trace ID. The zero ID is invalid.
type ID [16]byte

// SpanID is an 8-byte W3C parent/span ID. The zero SpanID is invalid.
type SpanID [8]byte

const hexDigits = "0123456789abcdef"

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string {
	var b [32]byte
	for i, v := range id {
		b[2*i] = hexDigits[v>>4]
		b[2*i+1] = hexDigits[v&0xf]
	}
	return string(b[:])
}

// IsZero reports whether the ID is the invalid all-zero ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the SpanID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [16]byte
	for i, v := range s {
		b[2*i] = hexDigits[v>>4]
		b[2*i+1] = hexDigits[v&0xf]
	}
	return string(b[:])
}

// IsZero reports whether the SpanID is the invalid all-zero SpanID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Span is one timed phase inside a Trace. Offsets are nanoseconds since
// the trace start (monotonic clock).
type Span struct {
	// Name is the phase name ("decode", "wal-append", "deliver", ...).
	Name string `json:"name"`
	// StartNs is the span start as nanoseconds since trace start.
	StartNs int64 `json:"start_ns"`
	// EndNs is the span end as nanoseconds since trace start.
	EndNs int64 `json:"end_ns"`
	// Epoch is the session epoch the span belongs to, or 0.
	Epoch int64 `json:"epoch,omitempty"`
	// Note carries optional free-form detail (session key, subscriber id).
	Note string `json:"note,omitempty"`
}

// maxSpans bounds the per-trace span slice so a trace with thousands of
// subscribers cannot grow without limit; overflow is counted in Dropped.
const maxSpans = 64

// Trace is one sampled request or epoch timeline. All methods are safe
// on a nil receiver (no-ops), which is how the unsampled hot path stays
// allocation-free, and safe for concurrent use: late spans may attach
// after the trace is published to the ring.
type Trace struct {
	mu      sync.Mutex
	id      ID
	root    SpanID
	parent  SpanID
	kind    string
	start   time.Time // carries a monotonic reading
	endNs   int64     // 0 until Finish
	remote  bool      // joined a caller's trace (propagated context)
	forced  bool      // retro-sampled because the request was slow
	spans   []Span
	dropped int
}

// ID returns the trace ID, or the zero ID on a nil receiver.
func (t *Trace) ID() ID {
	if t == nil {
		return ID{}
	}
	t.mu.Lock()
	id := t.id
	t.mu.Unlock()
	return id
}

// Root returns the root span ID, or the zero SpanID on a nil receiver.
func (t *Trace) Root() SpanID {
	if t == nil {
		return SpanID{}
	}
	t.mu.Lock()
	s := t.root
	t.mu.Unlock()
	return s
}

// Clock returns nanoseconds elapsed since the trace started, using the
// monotonic clock. On a nil receiver it returns 0, so call sites can
// stamp offsets unconditionally.
func (t *Trace) Clock() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start))
}

// Span appends a completed span with the given name and [startNs, endNs]
// offsets (as returned by Clock). No-op on a nil receiver.
func (t *Trace) Span(name string, startNs, endNs int64) {
	t.span(Span{Name: name, StartNs: startNs, EndNs: endNs})
}

// EpochSpan appends a completed span tagged with a session epoch.
// No-op on a nil receiver.
func (t *Trace) EpochSpan(name string, epoch int64, startNs, endNs int64) {
	t.span(Span{Name: name, StartNs: startNs, EndNs: endNs, Epoch: epoch})
}

// NoteSpan appends a completed span with a free-form note (session key,
// subscriber identity). No-op on a nil receiver.
func (t *Trace) NoteSpan(name, note string, startNs, endNs int64) {
	t.span(Span{Name: name, StartNs: startNs, EndNs: endNs, Note: note})
}

// EpochNoteSpan appends a completed span with both an epoch tag and a
// note. No-op on a nil receiver.
func (t *Trace) EpochNoteSpan(name, note string, epoch int64, startNs, endNs int64) {
	t.span(Span{Name: name, StartNs: startNs, EndNs: endNs, Epoch: epoch, Note: note})
}

func (t *Trace) span(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// View is an immutable copy of a Trace taken under its lock, safe to
// render after the original has been recycled.
type View struct {
	// TraceID is the 32-hex-digit trace ID.
	TraceID string `json:"trace_id"`
	// SpanID is the root span ID for this process's part of the trace.
	SpanID string `json:"span_id"`
	// ParentSpanID is the caller's span ID for joined traces, "" otherwise.
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Kind names what was traced ("mutate", "batch", "epoch", ...).
	Kind string `json:"kind"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNs is Finish-Start in nanoseconds (0 if unfinished).
	DurationNs int64 `json:"duration_ns"`
	// Remote marks traces joined from a caller's propagated context.
	Remote bool `json:"remote,omitempty"`
	// Forced marks traces retro-sampled by the slow-request path.
	Forced bool `json:"forced,omitempty"`
	// Spans lists the recorded phases, in append order.
	Spans []Span `json:"spans"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// view snapshots the trace under its lock.
func (t *Trace) view() View {
	t.mu.Lock()
	v := View{
		TraceID: t.id.String(),
		SpanID:  t.root.String(),
		Kind:    t.kind,

		Start:        t.start,
		DurationNs:   t.endNs,
		Remote:       t.remote,
		Forced:       t.forced,
		Spans:        append([]Span(nil), t.spans...),
		DroppedSpans: t.dropped,
	}
	if !t.parent.IsZero() {
		v.ParentSpanID = t.parent.String()
	}
	t.mu.Unlock()
	return v
}

// Recorder samples traces and retains the most recent ones in a
// lock-free ring buffer. The zero Recorder is unusable; use NewRecorder.
type Recorder struct {
	every atomic.Int64  // sample 1 in N starts; 0 disables sampling
	ticks atomic.Uint64 // start counter driving the 1-in-N decision
	rng   atomic.Uint64 // splitmix64 state for ID generation
	seq   atomic.Uint64 // next ring slot
	ring  []atomic.Pointer[Trace]
	pool  sync.Pool

	// Started counts sampled or forced traces handed out.
	Started atomic.Uint64
	// Finished counts traces published to the ring.
	Finished atomic.Uint64
}

// DefaultRing is the ring capacity used when NewRecorder is given a
// non-positive size.
const DefaultRing = 256

// NewRecorder returns a Recorder sampling 1 in sampleEvery Start calls
// (0 or negative disables sampling; forced traces still work) and
// retaining the last ringSize finished traces.
func NewRecorder(sampleEvery, ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	r := &Recorder{ring: make([]atomic.Pointer[Trace], ringSize)}
	r.every.Store(int64(sampleEvery))
	r.rng.Store(uint64(time.Now().UnixNano()) | 1)
	r.pool.New = func() any { return &Trace{spans: make([]Span, 0, 16)} }
	return r
}

// SetSampleEvery changes the sampling rate to 1 in n Start calls
// (n <= 0 disables sampling).
func (r *Recorder) SetSampleEvery(n int) { r.every.Store(int64(n)) }

// SampleEvery returns the current 1-in-N sampling rate (0 = disabled).
func (r *Recorder) SampleEvery() int { return int(r.every.Load()) }

// splitmix64 advances the recorder's ID stream.
func (r *Recorder) splitmix64() uint64 {
	x := r.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newID generates a fresh non-zero trace ID.
func (r *Recorder) newID() (id ID) {
	for id.IsZero() {
		a, b := r.splitmix64(), r.splitmix64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// NewSpanID generates a fresh non-zero span ID, for callers that need
// to mint a child span ID when propagating context downstream.
func (r *Recorder) NewSpanID() (s SpanID) {
	for s.IsZero() {
		v := r.splitmix64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// Start begins a trace of the given kind if this call wins the 1-in-N
// sampling draw, and returns nil otherwise. The nil return is the
// common case and costs one atomic load and one atomic add.
func (r *Recorder) Start(kind string) *Trace {
	n := r.every.Load()
	if n <= 0 {
		return nil
	}
	if n > 1 && r.ticks.Add(1)%uint64(n) != 0 {
		return nil
	}
	return r.start(kind, r.newID(), SpanID{}, false, false)
}

// StartForced begins a trace unconditionally, bypassing sampling. The
// slow-request path uses it to retro-sample requests that crossed the
// slow threshold (always-sample-on-slow).
func (r *Recorder) StartForced(kind string) *Trace {
	return r.start(kind, r.newID(), SpanID{}, false, true)
}

// Join begins a trace that continues a caller's propagated context
// (traceparent header or binary trace-extension frame). The caller's
// sampled flag has already been honored upstream: Join always records.
func (r *Recorder) Join(kind string, id ID, parent SpanID) *Trace {
	if id.IsZero() {
		return r.StartForced(kind)
	}
	return r.start(kind, id, parent, true, false)
}

func (r *Recorder) start(kind string, id ID, parent SpanID, remote, forced bool) *Trace {
	t := r.pool.Get().(*Trace)
	t.mu.Lock()
	t.id = id
	t.root = r.NewSpanID()
	t.parent = parent
	t.kind = kind
	t.start = time.Now()
	t.endNs = 0
	t.remote = remote
	t.forced = forced
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
	r.Started.Add(1)
	return t
}

// StartAt is StartForced with an explicit start time, for synthesizing
// a trace after the fact from phase timings already measured (the slow
// path learns a request was slow only once it has finished).
func (r *Recorder) StartAt(kind string, start time.Time) *Trace {
	t := r.start(kind, r.newID(), SpanID{}, false, true)
	t.mu.Lock()
	t.start = start
	t.mu.Unlock()
	return t
}

// Finish stamps the trace duration and publishes it into the ring.
// No-op when t is nil. The trace remains append-able after Finish so
// late delivery spans can attach; the evicted ring occupant is recycled
// through the pool.
func (r *Recorder) Finish(t *Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.endNs = int64(time.Since(t.start))
	t.mu.Unlock()
	slot := (r.seq.Add(1) - 1) % uint64(len(r.ring))
	old := r.ring[slot].Swap(t)
	r.Finished.Add(1)
	if old != nil {
		r.pool.Put(old)
	}
}

// Abandon returns an unpublished trace to the pool without recording
// it. No-op when t is nil.
func (r *Recorder) Abandon(t *Trace) {
	if t == nil {
		return
	}
	r.pool.Put(t)
}

// Snapshot copies the ring's current traces, newest first. Each trace
// is copied under its own lock, so the result is safe to render while
// recording continues.
func (r *Recorder) Snapshot() []View {
	n := len(r.ring)
	out := make([]View, 0, n)
	seq := r.seq.Load()
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		slot := (seq + uint64(n) - 1 - uint64(i)) % uint64(n)
		t := r.ring[slot].Load()
		if t == nil {
			continue
		}
		out = append(out, t.view())
	}
	return out
}

// Lookup returns the view of the ring trace with the given hex trace
// ID, or false if it has been evicted.
func (r *Recorder) Lookup(hexID string) (View, bool) {
	for i := range r.ring {
		t := r.ring[i].Load()
		if t != nil && t.ID().String() == hexID {
			return t.view(), true
		}
	}
	return View{}, false
}
