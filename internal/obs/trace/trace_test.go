package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	r := NewRecorder(1, 4)
	id := r.newID()
	span := r.NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(id, span, sampled)
		if len(h) != 55 {
			t.Fatalf("header length = %d, want 55: %q", len(h), h)
		}
		c, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) failed", h)
		}
		if c.TraceID != id || c.Parent != span || c.Sampled != sampled {
			t.Fatalf("round trip mismatch: %+v", c)
		}
		if !c.Valid() {
			t.Fatalf("context %+v not valid", c)
		}
	}
}

func TestTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0",   // short flags
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01x", // trailing junk on v00
		"00_0123456789abcdef0123456789abcdef-0123456789abcdef-01",  // bad separator
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",  // forbidden version
		"zz-0123456789abcdef0123456789abcdef-0123456789abcdef-01",  // non-hex version
		"00-00000000000000000000000000000000-0123456789abcdef-01",  // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",  // zero span id
		"00-0123456789abcdeg0123456789abcdef-0123456789abcdef-01",  // non-hex digit
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want reject", h)
		}
	}
	// Future versions may append fields after the flags.
	future := "cc-0123456789abcdef0123456789abcdef-0123456789abcdef-01-extrastuff"
	if c, ok := ParseTraceparent(future); !ok || !c.Sampled {
		t.Errorf("ParseTraceparent(%q) = %+v, %v; want sampled context", future, c, ok)
	}
}

func TestSamplingRate(t *testing.T) {
	r := NewRecorder(10, 8)
	hits := 0
	for i := 0; i < 1000; i++ {
		if tr := r.Start("req"); tr != nil {
			hits++
			r.Finish(tr)
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-10 sampling over 1000 starts: got %d traces, want 100", hits)
	}
	r.SetSampleEvery(0)
	if tr := r.Start("req"); tr != nil {
		t.Fatal("Start returned a trace with sampling disabled")
	}
	if tr := r.StartForced("slow"); tr == nil {
		t.Fatal("StartForced returned nil with sampling disabled")
	} else {
		r.Finish(tr)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Span("x", 0, tr.Clock())
	tr.EpochSpan("x", 3, 0, 0)
	tr.NoteSpan("x", "n", 0, 0)
	tr.EpochNoteSpan("x", "n", 3, 0, 0)
	if !tr.ID().IsZero() || !tr.Root().IsZero() || tr.Clock() != 0 {
		t.Fatal("nil trace leaked non-zero identity")
	}
	r := NewRecorder(0, 4)
	r.Finish(nil)
	r.Abandon(nil)
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.Start("req")
		tr.Span("decode", 0, tr.Clock())
		r.Finish(tr)
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %v per op, want 0", allocs)
	}
}

func TestRingRetainsNewestFirst(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 10; i++ {
		tr := r.Start("req")
		tr.EpochSpan("apply", int64(i), 0, tr.Clock())
		r.Finish(tr)
	}
	views := r.Snapshot()
	if len(views) != 4 {
		t.Fatalf("ring of 4 holds %d traces", len(views))
	}
	for i, v := range views {
		wantEpoch := int64(9 - i)
		if len(v.Spans) != 1 || v.Spans[0].Epoch != wantEpoch {
			t.Fatalf("views[%d] = %+v, want single span with epoch %d", i, v, wantEpoch)
		}
		if v.DurationNs <= 0 {
			t.Fatalf("views[%d] duration = %d, want > 0", i, v.DurationNs)
		}
	}
	if got := r.Finished.Load(); got != 10 {
		t.Fatalf("Finished = %d, want 10", got)
	}
}

func TestLateSpansAfterFinish(t *testing.T) {
	r := NewRecorder(1, 4)
	tr := r.Start("epoch")
	r.Finish(tr)
	tr.NoteSpan("deliver", "sub-1", 0, tr.Clock())
	v, ok := r.Lookup(tr.ID().String())
	if !ok {
		t.Fatalf("Lookup(%s) missed", tr.ID())
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "deliver" || v.Spans[0].Note != "sub-1" {
		t.Fatalf("late span not visible: %+v", v.Spans)
	}
}

func TestSpanCapDrops(t *testing.T) {
	r := NewRecorder(1, 2)
	tr := r.Start("epoch")
	for i := 0; i < maxSpans+5; i++ {
		tr.Span("deliver", 0, 1)
	}
	r.Finish(tr)
	v := r.Snapshot()[0]
	if len(v.Spans) != maxSpans || v.DroppedSpans != 5 {
		t.Fatalf("got %d spans, %d dropped; want %d and 5", len(v.Spans), v.DroppedSpans, maxSpans)
	}
}

func TestJoinAndStartAt(t *testing.T) {
	r := NewRecorder(0, 4)
	c, ok := ParseTraceparent("00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	if !ok {
		t.Fatal("parse failed")
	}
	tr := r.Join("mutate", c.TraceID, c.Parent)
	if tr.ID() != c.TraceID {
		t.Fatalf("joined trace ID = %s, want %s", tr.ID(), c.TraceID)
	}
	r.Finish(tr)
	v := r.Snapshot()[0]
	if !v.Remote || v.ParentSpanID != c.Parent.String() {
		t.Fatalf("joined view = %+v, want remote with parent %s", v, c.Parent)
	}

	start := time.Now().Add(-42 * time.Millisecond)
	syn := r.StartAt("slow", start)
	syn.Span("engine", 0, 42_000_000)
	r.Finish(syn)
	v2, ok := r.Lookup(syn.ID().String())
	if !ok || !v2.Forced {
		t.Fatalf("synthesized slow trace missing or not forced: %+v", v2)
	}
	if v2.DurationNs < 42_000_000 {
		t.Fatalf("synthesized duration %d < backdated 42ms", v2.DurationNs)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRecorder(1, 4)
	tr := r.Start("mutate")
	tr.EpochSpan("wal-append", 7, 10, 20)
	r.Finish(tr)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if d.SampleEvery != 1 || d.Started != 1 || d.Finished != 1 || len(d.Traces) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	if !strings.Contains(buf.String(), "wal-append") {
		t.Fatalf("span name missing from JSON:\n%s", buf.String())
	}
}

// FuzzParseTraceparent pins the header parser: it must never panic,
// and any header it accepts must re-format to an equivalent context.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	f.Add("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00")
	f.Add("00-00000000000000000000000000000000-0000000000000000-01")
	f.Add("ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01-extra")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, h string) {
		c, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		if !c.Valid() {
			t.Fatalf("accepted invalid context from %q: %+v", h, c)
		}
		round, ok2 := ParseTraceparent(FormatTraceparent(c.TraceID, c.Parent, c.Sampled))
		if !ok2 || round != c {
			t.Fatalf("roundtrip %q: %+v vs %+v", h, c, round)
		}
	})
}
