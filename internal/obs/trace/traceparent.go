package trace

// W3C Trace Context "traceparent" header support (version 00):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Parsing is permissive about future versions (any 2-hex version other
// than "ff" is accepted, per the spec's forward-compatibility rule) but
// strict about field lengths, separators, hex digits, and the all-zero
// invalid IDs.

// FlagSampled is the traceparent flags bit indicating the caller
// sampled this trace.
const FlagSampled = 0x01

// Context is a propagated trace context: who to join and whether the
// caller sampled.
type Context struct {
	// TraceID is the caller's trace ID.
	TraceID ID
	// Parent is the caller's span ID (our parent).
	Parent SpanID
	// Sampled is the traceparent sampled flag.
	Sampled bool
}

// Valid reports whether the context carries a usable (non-zero)
// trace ID and parent span ID.
func (c Context) Valid() bool { return !c.TraceID.IsZero() && !c.Parent.IsZero() }

// hexVal decodes one lowercase-or-uppercase hex digit, returning
// (value, true) or (0, false).
func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

func hexBytes(s string, dst []byte) bool {
	for i := 0; i < len(dst); i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value. It returns
// ok=false for malformed values, the forbidden version "ff", and the
// invalid all-zero trace or span IDs.
func ParseTraceparent(h string) (c Context, ok bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes minimum; longer values
	// are allowed only for future versions with extra suffix fields.
	if len(h) < 55 {
		return Context{}, false
	}
	if _, okV := hexVal(h[0]); !okV {
		return Context{}, false
	}
	if _, okV := hexVal(h[1]); !okV {
		return Context{}, false
	}
	if (h[0] == 'f' || h[0] == 'F') && (h[1] == 'f' || h[1] == 'F') {
		return Context{}, false // version ff is forbidden
	}
	version00 := h[0] == '0' && h[1] == '0'
	if version00 && len(h) != 55 {
		return Context{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, false
	}
	if !version00 && len(h) > 55 && h[55] != '-' {
		return Context{}, false
	}
	if !hexBytes(h[3:35], c.TraceID[:]) || !hexBytes(h[36:52], c.Parent[:]) {
		return Context{}, false
	}
	var flags [1]byte
	if !hexBytes(h[53:55], flags[:]) {
		return Context{}, false
	}
	if c.TraceID.IsZero() || c.Parent.IsZero() {
		return Context{}, false
	}
	c.Sampled = flags[0]&FlagSampled != 0
	return c, true
}

// FormatTraceparent renders a version-00 traceparent header value for
// the given trace ID, span ID, and sampled flag.
func FormatTraceparent(id ID, span SpanID, sampled bool) string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = append(b, id.String()...)
	b = append(b, '-')
	b = append(b, span.String()...)
	if sampled {
		b = append(b, '-', '0', '1')
	} else {
		b = append(b, '-', '0', '0')
	}
	return string(b)
}
