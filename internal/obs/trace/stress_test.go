package trace

import (
	"sync"
	"testing"
)

// TestRingConcurrentRecordSnapshot hammers the ring with concurrent
// recorders, late-span writers, and snapshot readers. Run under -race
// (the CI race job does) to pin the lock-free ring + copy-under-lock
// view contract: no torn reads, every view internally consistent.
func TestRingConcurrentRecordSnapshot(t *testing.T) {
	r := NewRecorder(1, 32)
	const (
		writers = 4
		readers = 3
		rounds  = 2000
	)
	var wWG, rWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func() {
			defer wWG.Done()
			for i := 0; i < rounds; i++ {
				tr := r.Start("stress")
				tr.EpochSpan("apply", int64(i), 0, tr.Clock())
				tr.Span("publish", tr.Clock(), tr.Clock())
				r.Finish(tr)
				// Late delivery span after publication, as the
				// subscriber relays do.
				tr.NoteSpan("deliver", "sub", tr.Clock(), tr.Clock())
			}
		}()
	}

	for rd := 0; rd < readers; rd++ {
		rWG.Add(1)
		go func() {
			defer rWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range r.Snapshot() {
					if v.TraceID == "" || v.Kind != "stress" {
						t.Errorf("torn view: %+v", v)
						return
					}
					for _, s := range v.Spans {
						switch s.Name {
						case "apply", "publish", "deliver":
						default:
							t.Errorf("unexpected span %q in view", s.Name)
							return
						}
					}
				}
				if _, ok := r.Lookup("ffffffffffffffffffffffffffffffff"); ok {
					t.Error("Lookup matched an impossible ID")
					return
				}
			}
		}()
	}

	wWG.Wait()
	close(stop)
	rWG.Wait()

	if got := r.Finished.Load(); got != writers*rounds {
		t.Fatalf("Finished = %d, want %d", got, writers*rounds)
	}
	if views := r.Snapshot(); len(views) != 32 {
		t.Fatalf("ring holds %d views, want 32", len(views))
	}
}
