package trace

import (
	"encoding/json"
	"io"
)

// Dump is the JSON document served at /debug/traces.
type Dump struct {
	// SampleEvery is the active 1-in-N sampling rate (0 = disabled).
	SampleEvery int `json:"sample_every"`
	// Started counts traces handed out since process start.
	Started uint64 `json:"started"`
	// Finished counts traces published to the ring.
	Finished uint64 `json:"finished"`
	// Traces lists the retained traces, newest first.
	Traces []View `json:"traces"`
}

// WriteJSON renders the ring's current traces (newest first) plus
// recorder counters as an indented JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	d := Dump{
		SampleEvery: r.SampleEvery(),
		Started:     r.Started.Load(),
		Finished:    r.Finished.Load(),
		Traces:      r.Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
