package obs

import (
	"sync"
	"testing"
)

// TestRecordZeroAlloc is the zero-overhead guard of the telemetry
// substrate: recording into counters, gauges, and histograms must not
// allocate, or the instrumented engine batch path would regress its
// 0 allocs/op contract.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Record(18)
		h.Record(1 << 30)
	}); n != 0 {
		t.Fatalf("record path allocates %v per run, want 0", n)
	}
}

// TestSnapshotUnderConcurrentRecorders hammers registry snapshots and
// Prometheus exposition concurrently with recorders on every metric
// kind — the race-detector test of the scrape path. It also checks the
// monotonic-read contract: counters never decrease between scrapes.
func TestSnapshotUnderConcurrentRecorders(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			h := r.Histogram(`hammer_ns{w="x"}`)
			g := r.Gauge("hammer_live")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Record(seed + uint64(i))
				g.Set(int64(i))
			}
		}(uint64(w) << 10)
	}

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var lastCounter, lastHist uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if v := s.Counters["hammer_total"]; v < lastCounter {
				t.Errorf("counter went backwards: %d after %d", v, lastCounter)
				return
			} else {
				lastCounter = v
			}
			if hs := s.Histograms[`hammer_ns{w="x"}`]; hs.Count < lastHist {
				t.Errorf("histogram count went backwards: %d after %d", hs.Count, lastHist)
				return
			} else {
				lastHist = hs.Count
			}
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-scraperDone

	s := r.Snapshot()
	if got := s.Counters["hammer_total"]; got != writers*perWriter {
		t.Fatalf("final counter %d, want %d", got, writers*perWriter)
	}
	if got := s.Histograms[`hammer_ns{w="x"}`].Count; got != writers*perWriter {
		t.Fatalf("final histogram count %d, want %d", got, writers*perWriter)
	}
}

// discard is an io.Writer that drops everything (keeps the scrape loop
// from building huge strings).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
