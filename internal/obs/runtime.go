package obs

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
)

// WriteGoRuntime renders the Go runtime's own health metrics in
// exposition format: goroutine count, heap/stack sizes and occupancy,
// cumulative allocation and object churn, and GC cycle/pause totals
// with the most recent pause and the GC CPU fraction. It calls
// runtime.ReadMemStats
// (a brief stop-the-world), so it belongs on the scrape path only —
// cmd/latticed appends it to every /metrics response after the
// registry's metrics.
func WriteGoRuntime(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	type metric struct {
		name, kind, value string
	}
	// The most recent GC pause lives in the PauseNs ring at index
	// (NumGC+255)%256 (zero before the first cycle).
	var lastPause uint64
	if ms.NumGC > 0 {
		lastPause = ms.PauseNs[(ms.NumGC+255)%256]
	}
	metrics := []metric{
		{"go_goroutines", "gauge", strconv.Itoa(runtime.NumGoroutine())},
		{"go_memstats_heap_alloc_bytes", "gauge", strconv.FormatUint(ms.HeapAlloc, 10)},
		{"go_memstats_heap_inuse_bytes", "gauge", strconv.FormatUint(ms.HeapInuse, 10)},
		{"go_memstats_heap_idle_bytes", "gauge", strconv.FormatUint(ms.HeapIdle, 10)},
		{"go_memstats_heap_objects", "gauge", strconv.FormatUint(ms.HeapObjects, 10)},
		{"go_memstats_stack_inuse_bytes", "gauge", strconv.FormatUint(ms.StackInuse, 10)},
		{"go_memstats_next_gc_bytes", "gauge", strconv.FormatUint(ms.NextGC, 10)},
		{"go_memstats_sys_bytes", "gauge", strconv.FormatUint(ms.Sys, 10)},
		{"go_memstats_alloc_bytes_total", "counter", strconv.FormatUint(ms.TotalAlloc, 10)},
		{"go_memstats_mallocs_total", "counter", strconv.FormatUint(ms.Mallocs, 10)},
		{"go_memstats_frees_total", "counter", strconv.FormatUint(ms.Frees, 10)},
		{"go_gc_cycles_total", "counter", strconv.FormatUint(uint64(ms.NumGC), 10)},
		{"go_gc_pause_seconds_total", "counter",
			strconv.FormatFloat(float64(ms.PauseTotalNs)/1e9, 'g', -1, 64)},
		{"go_gc_last_pause_seconds", "gauge",
			strconv.FormatFloat(float64(lastPause)/1e9, 'g', -1, 64)},
		{"go_gc_cpu_fraction", "gauge",
			strconv.FormatFloat(ms.GCCPUFraction, 'g', -1, 64)},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", m.name, m.kind, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}
