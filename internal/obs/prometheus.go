package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders Prometheus text exposition format v0.0.4 from a
// Registry snapshot, stdlib-only. Series are grouped by family (the
// metric name before any '{' label block) so each family gets exactly
// one `# TYPE` line; histograms expand into cumulative `_bucket` series
// (le = 2^i − 1 for log2 bucket i, then "+Inf") plus `_sum` and
// `_count`. Exposition runs on the scrape path, never the serving hot
// path, so it favors clarity over allocation thrift.

// ContentType is the Content-Type header value of the exposition
// format this package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// family splits a metric name into its family and the label block's
// inner text ("" when unlabeled): `a{b="c"}` → (`a`, `b="c"`).
func family(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels renders a label block from the existing inner text plus
// one extra label ("" to add none).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// EscapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promSeries is one rendered series line (name with labels + value).
// group and le are the sort key: series order within a family is
// (group, le, name), so a histogram's `_bucket` series — which share a
// group (the series name sans le label) — sort by numeric le ascending
// with +Inf (le = MaxUint64) last, as OpenMetrics requires, instead of
// lexicographically ("+Inf" < "1023" < "127" in byte order).
type promSeries struct {
	name  string
	value string
	group string
	le    uint64
}

// promFamily groups the series of one family under its TYPE.
type promFamily struct {
	name   string
	kind   string // "counter", "gauge", "histogram"
	series []promSeries
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format v0.0.4: families sorted by name, one `# TYPE` line
// each, histograms as cumulative buckets + sum + count. Values are read
// through Snapshot, so concurrent recorders are safe and counters never
// appear to decrease across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writeSnapshot(w, r.Snapshot())
}

// writeSnapshot renders an already-captured snapshot (the testable
// core of WritePrometheus).
func writeSnapshot(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	addBucket := func(fam, kind, series, value, group string, le uint64) {
		f, ok := fams[fam]
		if !ok {
			f = &promFamily{name: fam, kind: kind}
			fams[fam] = f
		}
		f.series = append(f.series, promSeries{name: series, value: value, group: group, le: le})
	}
	add := func(fam, kind, series, value string) {
		addBucket(fam, kind, series, value, series, 0)
	}
	for name, v := range s.Counters {
		fam, labels := family(name)
		add(fam, "counter", fam+joinLabels(labels, ""), strconv.FormatUint(v, 10))
	}
	for name, v := range s.Gauges {
		fam, labels := family(name)
		add(fam, "gauge", fam+joinLabels(labels, ""), strconv.FormatInt(v, 10))
	}
	for name, h := range s.Histograms {
		fam, labels := family(name)
		top := NumBuckets - 1
		for top > 0 && h.Buckets[top] == 0 {
			top--
		}
		total := uint64(0)
		for _, b := range h.Buckets {
			total += b
		}
		cum := uint64(0)
		for i := 0; i <= top && i < NumBuckets-1; i++ {
			cum += h.Buckets[i]
			if h.Buckets[i] == 0 && i > 0 {
				continue // empty interior buckets add nothing cumulative
			}
			le := BucketUpper(i)
			addBucket(fam, "histogram",
				fam+"_bucket"+joinLabels(labels, `le="`+strconv.FormatUint(le, 10)+`"`),
				strconv.FormatUint(cum, 10), fam+"_bucket"+joinLabels(labels, ""), le)
		}
		addBucket(fam, "histogram", fam+"_bucket"+joinLabels(labels, `le="+Inf"`),
			strconv.FormatUint(total, 10), fam+"_bucket"+joinLabels(labels, ""), ^uint64(0))
		add(fam, "histogram", fam+"_sum"+joinLabels(labels, ""), strconv.FormatUint(h.Sum, 10))
		add(fam, "histogram", fam+"_count"+joinLabels(labels, ""), strconv.FormatUint(h.Count, 10))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool {
			a, b := f.series[i], f.series[j]
			if a.group != b.group {
				return a.group < b.group
			}
			if a.le != b.le {
				return a.le < b.le
			}
			return a.name < b.name
		})
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTopK renders a TopK sketch as one counter family: each tracked
// key becomes a series `family{label="key"} count` (key escaped). The
// family must not collide with a name registered in a Registry written
// to the same stream.
func WriteTopK(w io.Writer, fam, label string, t *TopK) error {
	entries := t.Snapshot()
	if len(entries) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", fam, label, EscapeLabel(e.Key), e.Count); err != nil {
			return err
		}
	}
	return nil
}
