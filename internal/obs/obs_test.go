package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1 << 38, NumBuckets - 1}, {^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// BucketUpper is the inclusive top of each bucket: a value lands in
	// the first bucket whose upper bound is ≥ the value.
	for _, c := range cases {
		i := bucketOf(c.v)
		if up := BucketUpper(i); c.v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", c.v, i, up)
		}
		if i > 0 && i < NumBuckets-1 {
			if up := BucketUpper(i - 1); c.v <= up {
				t.Errorf("value %d fits bucket %d already (upper %d)", c.v, i-1, up)
			}
		}
	}

	var h Histogram
	for _, v := range []uint64{1, 2, 3, 100, 100, 1000} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1206 {
		t.Fatalf("count=%d sum=%d, want 6, 1206", s.Count, s.Sum)
	}
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total != 6 {
		t.Fatalf("bucket total %d, want 6", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// 1000 values uniform in [1, 1000]: the quantile estimate must land
	// within its value's log2 bucket (≤2× relative error).
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	for _, c := range []struct{ q, want float64 }{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("Quantile(%v) = %v, want within 2x of %v", c.q, got, c.want)
		}
	}
	if q := s.Quantile(-1); q <= 0 || math.IsNaN(q) {
		t.Errorf("Quantile(-1) = %v", q)
	}
	if q := s.Quantile(2); q < s.Quantile(0.99) {
		t.Errorf("Quantile(2) = %v below p99", q)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Record(9)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["g"] != -2 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot off: %+v", s)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(2)
	tk.Record("heavy", 100)
	tk.Record("light", 1)
	tk.Record("new", 5) // evicts light (count 1), inherits 1+5
	entries := tk.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}
	if entries[0].Key != "heavy" || entries[0].Count != 100 {
		t.Fatalf("top entry %+v", entries[0])
	}
	if entries[1].Key != "new" || entries[1].Count != 6 {
		t.Fatalf("second entry %+v (want new, 6: space-saving inherits the evicted min)", entries[1])
	}
	// The cardinality bound holds no matter how many keys arrive.
	for i := 0; i < 100; i++ {
		tk.Record(strings.Repeat("k", i+1), 1)
	}
	if got := len(tk.Snapshot()); got != 2 {
		t.Fatalf("tracked %d keys, capacity 2", got)
	}
}

func TestFamilySplit(t *testing.T) {
	for _, c := range []struct{ name, fam, labels string }{
		{"plain", "plain", ""},
		{`a{b="c"}`, "a", `b="c"`},
		{`a{b="c",d="e"}`, "a", `b="c",d="e"`},
	} {
		fam, labels := family(c.name)
		if fam != c.fam || labels != c.labels {
			t.Errorf("family(%q) = %q, %q, want %q, %q", c.name, fam, labels, c.fam, c.labels)
		}
	}
	if got := joinLabels(`a="b"`, `le="+Inf"`); got != `{a="b",le="+Inf"}` {
		t.Errorf("joinLabels = %q", got)
	}
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}
