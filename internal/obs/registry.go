package obs

import "sync"

// Registry names and owns a set of metrics. Handle acquisition
// (Counter, Gauge, Histogram) takes the registration lock and is
// idempotent — the same name always returns the same handle — so
// callers fetch handles once at wiring time and record through them
// lock-free forever after. Registries are cheap and independent: each
// server (or test) builds its own, so there is no process-global
// metric state.
//
// A name may embed a constant Prometheus label block, e.g.
// `requests_total{endpoint="slots",codec="json"}`. Series sharing the
// text before the '{' form one family in the exposition output.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric's current value. The metric
// set is fixed under the registration lock; each value is one atomic
// load (histograms one load per bucket), so the snapshot is weakly
// consistent across metrics and torn-free within each. Counters are
// monotonic: successive snapshots never observe a value decrease.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for n, c := range counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry's metrics, keyed by
// full metric name (label block included).
type Snapshot struct {
	// Counters, Gauges, and Histograms hold every registered metric's
	// value at snapshot time.
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}
