// Package obs is the telemetry substrate of the serving stack: lock-free
// counters, gauges, and fixed-bucket log2 histograms cheap enough to
// record on the zero-alloc engine hot paths, plus a Registry that names
// them and renders Prometheus text exposition (format v0.0.4) with no
// external dependencies.
//
// Design contract, in the style of the batch engine's hot paths:
//
//   - Recording (Counter.Add, Gauge.Set, Histogram.Record) is one to
//     three atomic adds — no locks, no allocations, no time lookups —
//     so instrumenting a per-batch serving path costs nanoseconds and
//     the AllocsPerRun guard tests pin it at 0 allocs.
//   - Handles are obtained once (Registry.Counter et al. take the
//     registration lock) and then shared freely: every method on a
//     handle is safe for any number of concurrent callers.
//   - Snapshots are weakly consistent: the metric set is captured under
//     the registration lock, each value with one atomic load. Counters
//     are monotonic, so two successive scrapes always observe
//     non-decreasing values — there are no torn reads, only values that
//     may be a few events apart across different metrics.
//
// Metric names may carry a constant Prometheus label block, e.g.
// `requests_total{endpoint="slots",codec="json"}`; the exposition writer
// groups such series under one family TYPE line. See DESIGN.md §11.
package obs

import "sync/atomic"

// Counter is a monotonically increasing metric (requests served, events
// applied). The zero value is ready to use; all methods are safe for
// concurrent callers and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a point-in-time signed value (live sessions, cached plans).
// The zero value is ready to use; all methods are safe for concurrent
// callers and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
