// Quickstart: schedule a grid of sensors with 5-point (cross)
// interference neighborhoods in five slots — the minimum possible — and
// verify the schedule is collision-free.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func main() {
	// Sensors sit on the square lattice; each broadcast interferes with
	// the four axis neighbors (the paper's Figure 2, middle).
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		log.Fatalf("planning failed: %v", err)
	}
	fmt.Printf("schedule period m = |N| = %d slots (provably optimal)\n\n", plan.Slots())

	// Which slot does each sensor use? Print a patch of the plane.
	fmt.Println("slot assignment around the origin (1-based):")
	for y := 3; y >= -3; y-- {
		for x := -3; x <= 3; x++ {
			slot, err := plan.SlotOf(lattice.Pt(x, y))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2d", slot+1)
		}
		fmt.Println()
	}

	// A sensor asks, each tick: may I broadcast now?
	sensor := lattice.Pt(2, -1)
	fmt.Printf("\nsensor %s broadcast windows in the first 10 ticks:", sensor)
	for t := int64(0); t < 10; t++ {
		ok, err := plan.MayBroadcast(sensor, t)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf(" t=%d", t)
		}
	}
	fmt.Println()

	// Independently verify tiling conditions T1/T2 and collision
	// freedom on a finite window.
	if err := plan.Verify(lattice.CenteredWindow(2, 5)); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\nT1/T2 and collision-freeness verified on [-5,5]².")

	// And confirm optimality against the exact distance-2 chromatic
	// number of the window.
	rep, err := plan.Optimality(lattice.CenteredWindow(2, 4), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimality: slots=%d chromatic=%d proven=%v optimal=%v\n",
		rep.Slots, rep.Chromatic, rep.Proven, rep.Optimal)
}
