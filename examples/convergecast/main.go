// Convergecast: the monitoring workload that motivates the paper — a grid
// of sensors reports readings hop by hop to a sink. Under the tiling
// schedule every hop succeeds on the first transmission, so end-to-end
// latency is deterministic and bounded by (hops × period); contention
// forwarding loses hops at every level of the tree.
//
// Run with:
//
//	go run ./examples/convergecast
package main

import (
	"fmt"
	"log"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/wsn"
)

func main() {
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	w := lattice.CenteredWindow(2, 6) // 13×13 grid, sink in the center
	fmt.Printf("13×13 monitoring grid, %d-slot tiling schedule, sink at (0,0)\n\n", plan.Slots())

	run := func(p wsn.Protocol) wsn.ConvergecastMetrics {
		m, err := wsn.RunConvergecast(wsn.ConvergecastConfig{
			Window:     w,
			Deployment: plan.Deployment(),
			Protocol:   p,
			Sink:       lattice.Pt(0, 0),
			SourceRate: 0.002,
			Slots:      5000,
			Seed:       11,
			QueueCap:   64,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	tiling := run(wsn.NewScheduleMAC("tiling", plan.Schedule()))
	aloha := run(&wsn.SlottedALOHA{P: 0.2})

	fmt.Printf("%-12s %10s %12s %14s %12s\n",
		"protocol", "delivered", "hop-failures", "fwd/delivered", "e2e latency")
	for _, row := range []struct {
		name string
		m    wsn.ConvergecastMetrics
	}{{"tiling(5)", tiling}, {"aloha(0.2)", aloha}} {
		fmt.Printf("%-12s %10d %12d %14.2f %12.2f\n", row.name,
			row.m.DeliveredToSink, row.m.FailedForwards,
			row.m.ForwardsPerDelivered(), row.m.MeanE2ELatency())
	}

	if tiling.FailedForwards != 0 {
		log.Fatal("tiling convergecast failed a hop — this should be impossible")
	}
	fmt.Printf("\nrouting tree depth %d ⇒ deterministic latency bound %d slots\n",
		tiling.TreeDepth, tiling.TreeDepth*plan.Slots())
	fmt.Printf("measured mean e2e latency: %.1f slots\n", tiling.MeanE2ELatency())
}
