// Millionsensor: build the conflict graph of a million-sensor
// homogeneous deployment implicitly — via the periodic (stencil)
// adjacency mode, which stores O(det(H)·|stencil|) integers instead of
// the ~6 million edges of the explicit CSR build — then color it with
// DSATUR and verify the paper's Theorem 1 tiling schedule against it,
// reporting wall time and heap growth at each step.
//
// Run with:
//
//	go run ./examples/millionsensor            # implicit only (fast, tiny)
//	go run ./examples/millionsensor -explicit  # also build the explicit CSR for contrast
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// heapUsed reports live heap bytes after a collection, so successive
// calls measure what each step actually retains.
func heapUsed() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func main() {
	explicit := flag.Bool("explicit", false, "also build the explicit CSR graph for contrast")
	radius := flag.Int("radius", 500, "window half-side r; the window [-r, r]² holds (2r+1)² sensors")
	flag.Parse()

	tile := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(tile)
	w := lattice.CenteredWindow(2, *radius)
	n := w.Size()
	fmt.Printf("deployment: homogeneous %s on %s — %d sensors\n", tile.Name(), w, n)

	// Implicit build: one residue class, stencil (N−N)\{0}.
	base := heapUsed()
	start := time.Now()
	g, err := graph.HomogeneousConflictGraph(dep, w)
	if err != nil {
		log.Fatalf("implicit build: %v", err)
	}
	buildTime := time.Since(start)
	buildHeap := int64(heapUsed()) - int64(base)
	center, _ := w.IndexOf(lattice.Origin(2))
	fmt.Printf("implicit periodic graph: built in %v, ~%d B retained (mode=%s, interior degree=%d)\n",
		buildTime, max64(buildHeap, 0), g.Mode(), g.Degree(center))

	start = time.Now()
	edges := g.Edges()
	fmt.Printf("edge count (computed from the stencil, never stored): %d in %v\n",
		edges, time.Since(start))

	// Color the million-vertex graph through the implicit adjacency.
	start = time.Now()
	colors, k := graph.DSATUR(g)
	fmt.Printf("DSATUR: %d colors over %d vertices in %v\n", k, len(colors), time.Since(start))

	// Verify the Theorem 1 tiling schedule against the same graph: the
	// optimal |N|-slot schedule must be collision-free on every edge.
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		log.Fatal("no lattice tiling for the cross")
	}
	s := schedule.FromLatticeTiling(lt)
	start = time.Now()
	if err := graph.VerifySchedule(g, w, s); err != nil {
		log.Fatalf("Theorem 1 schedule rejected: %v", err)
	}
	fmt.Printf("Theorem 1 schedule (%d slots) verified collision-free over all %d edges in %v\n",
		s.Slots(), edges, time.Since(start))

	if !*explicit {
		fmt.Println("\n(re-run with -explicit to materialize the CSR graph for comparison)")
		return
	}
	base = heapUsed()
	start = time.Now()
	ge, _, err := graph.ConflictGraphShards(dep, w, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatalf("explicit build: %v", err)
	}
	fmt.Printf("\nexplicit CSR graph: built in %v, ~%.1f MB retained (mode=%s, %d edges)\n",
		time.Since(start), float64(int64(heapUsed())-int64(base))/(1<<20), ge.Mode(), ge.Edges())
	runtime.KeepAlive(ge)
}

// max64 clamps a heap delta that a concurrent collection made negative.
func max64(v int64, floor int64) int64 {
	if v < floor {
		return floor
	}
	return v
}
