// Schedule-as-a-service: serve tiling schedules over HTTP and query
// them in batches.
//
// The example starts the cmd/latticed handler on a loopback listener,
// compiles a plan through the wire API, fetches a batch of slots and
// may-broadcast bits, and shows the same queries answered in-process by
// the zero-allocation batch engine.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/service"
)

func main() {
	// A latticed instance: plan registry behind the HTTP wire layer.
	reg := service.NewRegistry(16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		_ = http.Serve(ln, service.NewServer(reg, service.ServerOptions{}))
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("latticed serving on %s\n\n", base)

	// 1. Compile (and cache) a plan over the wire.
	var plan service.PlanResponse
	post(base+"/v1/plan", service.PlanRequest{
		Plan: service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
	}, &plan)
	fmt.Printf("plan %s: %d slots, period %v\n", plan.Signature, plan.Slots, plan.Period)

	// 2. Batch slot query for explicit sensor positions.
	var slots service.SlotsResponse
	post(base+"/v1/slots:batch", service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Points: [][]int{{0, 0}, {3, 4}, {-7, 2}, {100, -250}},
	}, &slots)
	fmt.Printf("slots of (0,0) (3,4) (-7,2) (100,-250): %v (m = %d)\n", slots.Slots, slots.M)

	// 3. Who may broadcast right now? A window shorthand queries a whole
	// deployment region at once.
	var may service.MayResponse
	post(base+"/v1/maybroadcast:batch", service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Window: &service.WindowSpec{Lo: []int{-2, -2}, Hi: []int{2, 2}},
		T:      7,
	}, &may)
	fmt.Println("\nbroadcasters in [-2,2]² at t=7 (★ = may transmit):")
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			// Window order is lexicographic in (x, y); transpose for display.
			if may.May[5*x+y] {
				fmt.Print(" ★")
			} else {
				fmt.Print(" ·")
			}
		}
		fmt.Println()
	}

	// 4. The same engine, in-process: compile once, answer batches with
	// zero allocations per query in steady state.
	p, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	w := lattice.CenteredWindow(2, 100) // 201×201 = 40 401 sensors
	dst := make([]int32, 0, w.Size())
	dst, err = service.QueryWindowSlots(p, w, dst[:0])
	if err != nil {
		log.Fatal(err)
	}
	hist := make([]int, p.Slots())
	for _, s := range dst {
		hist[s]++
	}
	fmt.Printf("\nin-process: %d sensors scheduled, per-slot load %v (perfectly balanced)\n",
		len(dst), hist)
}

func post(url string, body, into any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, er.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatalf("decoding %s reply: %v", url, err)
	}
}
