// Mobile sensors: the paper's Conclusions extension. Slots belong to
// locations, not sensors: a roaming sensor may transmit only when its
// current Voronoi region's slot comes up AND its interference disk fits
// inside that region's tile. The example runs random-waypoint agents and
// shows the discipline never collides.
//
// Run with:
//
//	go run ./examples/mobile
package main

import (
	"fmt"
	"log"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/mobile"
	"tilingsched/internal/prototile"
)

func main() {
	// Locations carry the 9-slot Moore-ball schedule: each tile of the
	// tiling is a 3×3 block of Voronoi squares.
	plan, err := core.NewPlan(lattice.Square(), prototile.ChebyshevBall(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("location schedule: %d slots over 3×3 tiles\n\n", plan.Slots())

	fmt.Printf("%8s %8s %12s %12s %12s %11s\n",
		"radius", "agents", "sends", "unfit-muted", "collisions", "utilization")
	for _, cfg := range []struct {
		radius float64
		agents int
	}{
		{0.6, 8}, {0.9, 8}, {1.2, 8}, {0.9, 24},
	} {
		m, err := mobile.Run(mobile.Config{
			Schedule:  plan.Schedule(),
			ArenaLo:   [2]float64{-7, -7},
			ArenaHi:   [2]float64{7, 7},
			NumAgents: cfg.agents,
			Radius:    cfg.radius,
			Speed:     0.4,
			Slots:     1500,
			Seed:      2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %8d %12d %12d %12d %11.4f\n",
			cfg.radius, cfg.agents, m.Sends, m.UnfitMuted, m.Collisions, m.Utilization())
		if m.Collisions != 0 {
			log.Fatal("mobile discipline collided — this should be impossible")
		}
	}
	fmt.Println("\nno collisions in any configuration: the location-slot rule is safe under motion.")
	fmt.Println("larger radii are muted more often (the disk must fit the 3×3 tile).")
}
