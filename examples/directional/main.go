// Directional antennas: reproduce the paper's Figure 3 workflow — an
// 8-element directional neighborhood, its tiling, the 8-slot schedule —
// and race it against slotted ALOHA in the simulator.
//
// Run with:
//
//	go run ./examples/directional
package main

import (
	"fmt"
	"log"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/wsn"
)

func main() {
	tile := prototile.Directional()
	fmt.Printf("directional neighborhood (|N| = %d):\n%s\n\n", tile.Size(), tile.ASCII())

	exact, evidence, err := core.ExplainExactness(tile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact: %v (%s)\n\n", exact, evidence)

	plan, err := core.NewPlan(lattice.Square(), tile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d slots, period lattice %s\n\n", plan.Slots(), plan.Tiling().Period())

	// Race the tiling schedule against ALOHA under saturation.
	w := lattice.CenteredWindow(2, 5)
	dep := plan.Deployment()
	run := func(p wsn.Protocol) wsn.Metrics {
		m, err := wsn.Run(wsn.Config{
			Window: w, Deployment: dep, Protocol: p,
			Traffic: wsn.Saturated{}, Slots: 1000, Seed: 7, QueueCap: 32,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	tilingM := run(wsn.NewScheduleMAC("tiling", plan.Schedule()))
	alohaM := run(&wsn.SlottedALOHA{P: 1.0 / float64(tile.Size())})

	fmt.Printf("%-12s %10s %10s %12s\n", "protocol", "delivered", "failed", "energy/msg")
	fmt.Printf("%-12s %10d %10d %12.3f\n", "tiling(8)", tilingM.Delivered, tilingM.FailedTx, tilingM.EnergyPerDelivered())
	fmt.Printf("%-12s %10d %10d %12.3f\n", "aloha(1/8)", alohaM.Delivered, alohaM.FailedTx, alohaM.EnergyPerDelivered())

	if tilingM.FailedTx != 0 {
		log.Fatal("tiling schedule collided — this should be impossible")
	}
	// Under saturation every sensor sustains exactly one successful
	// broadcast per period — the maximum any collision-free schedule
	// can deliver with this neighborhood.
	perSensor := float64(tilingM.Delivered) / float64(tilingM.Nodes)
	fmt.Printf("\ntiling throughput: %.1f broadcasts/sensor over 1000 slots (period %d ⇒ max %.1f)\n",
		perSensor, plan.Slots(), 1000.0/float64(plan.Slots()))
}
