// Churn: drive a dynamic deployment through join/leave/move/fail events
// and watch the incremental machinery work — the conflict graph is
// patched (never rebuilt) and the schedule repaired with bounded
// disruption, while a from-scratch ConflictGraph build of the same
// deployment is timed alongside for contrast. A second act replays the
// same churn inside the slotted-radio simulator, where the Theorem 1
// schedule keeps a perfect delivery ratio with zero rescheduling:
// condition T2 is closed under subsets, the paper's quiet superpower for
// churning networks.
//
// Run with:
//
//	go run ./examples/churn [-half 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"tilingsched/internal/dynamic"
	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

func main() {
	half := flag.Int("half", 60, "window half-side r; [-r, r]² sensors")
	flag.Parse()

	tile := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		log.Fatal("churn: no tiling for the cross")
	}
	plan := schedule.FromLatticeTiling(lt)
	dep := plan.Deployment()
	w := lattice.CenteredWindow(2, *half)
	n := w.Size()
	fmt.Printf("deployment: %d sensors in %s, %d-slot tiling schedule\n\n", n, w, plan.Slots())

	start := time.Now()
	m, err := dynamic.NewMutator(dep, w, plan, dynamic.Options{
		Residues: tiling.IdentityResidues(2),
	})
	if err != nil {
		log.Fatalf("churn: %v", err)
	}
	fmt.Printf("mutator seeded (implicit periodic base) in %v\n", time.Since(start))

	// The comparator every event avoids: one explicit rebuild.
	start = time.Now()
	if _, _, err := graph.ConflictGraph(dep, w); err != nil {
		log.Fatalf("churn: %v", err)
	}
	rebuild := time.Since(start)
	fmt.Printf("full explicit ConflictGraph rebuild of the same window: %v\n\n", rebuild)

	rng := rand.New(rand.NewSource(1))
	randomIn := func() lattice.Point {
		return lattice.Pt(rng.Intn(2**half+1)-*half, rng.Intn(2**half+1)-*half)
	}
	batches := [][]dynamic.Event{
		{{Kind: dynamic.Leave, P: lattice.Pt(0, 0)}},
		{{Kind: dynamic.Fail, P: lattice.Pt(3, -2)}, {Kind: dynamic.Leave, P: lattice.Pt(-5, 5)}},
		{{Kind: dynamic.Join, P: lattice.Pt(0, 0)}},       // rejoin
		{{Kind: dynamic.Join, P: lattice.Pt(*half+1, 0)}}, // grow past the window
		{{Kind: dynamic.Join, P: lattice.Pt(*half+2, 0)}}, // and again, next to it
		{{Kind: dynamic.Move, P: lattice.Pt(1, 1), To: lattice.Pt(*half+1, 1)}},
	}
	for i := 0; i < 6; i++ { // random in-window churn rounds
		p := randomIn()
		if _, err := m.SlotOf(p); err == nil {
			batches = append(batches, []dynamic.Event{{Kind: dynamic.Leave, P: p}})
		} else {
			batches = append(batches, []dynamic.Event{{Kind: dynamic.Join, P: p}})
		}
	}

	fmt.Printf("%-44s %10s %8s %8s %8s\n", "batch", "apply", "joined", "left", "reassig")
	for _, evs := range batches {
		label := describe(evs)
		start = time.Now()
		d, _, err := m.Apply(evs)
		if err != nil {
			log.Fatalf("churn: %s: %v", label, err)
		}
		el := time.Since(start)
		fmt.Printf("%-44s %10v %8d %8d %8d\n", label, el, d.Joined, d.Departed, d.Reassigned)
		if d.FullRecolor {
			fmt.Printf("%-44s (full recolor: palette now %d)\n", "", m.Slots())
		}
	}
	if err := m.Verify(); err != nil {
		log.Fatalf("churn: schedule invalid after churn: %v", err)
	}
	s := m.Stats()
	fmt.Printf("\nafter churn: %d live sensors, %d slots, schedule verified collision-free\n",
		m.AliveCount(), m.Slots())
	fmt.Printf("stats: %d joins, %d leaves, %d fails, %d moves, %d repairs, %d full recolors\n",
		s.Joins, s.Leaves, s.Fails, s.Moves, s.Repairs, s.FullRecolors)
	fmt.Printf("every batch above patched the graph in microseconds; the rebuild it avoided costs %v\n\n", rebuild)

	// Act two: the same story in the radio simulator. Saturated traffic,
	// scripted churn — the tiling schedule never collides.
	simW := lattice.CenteredWindow(2, 4)
	sim, err := wsn.Run(wsn.Config{
		Window:     simW,
		Deployment: dep,
		Protocol:   wsn.NewScheduleMAC("tiling", plan),
		Traffic:    wsn.Saturated{},
		Slots:      400,
		Seed:       7,
		Churn: []wsn.ChurnEvent{
			{Slot: 50, P: lattice.Pt(0, 0), Up: false},
			{Slot: 50, P: lattice.Pt(2, 2), Up: false},
			{Slot: 120, P: lattice.Pt(0, 0), Up: true},
			{Slot: 200, P: lattice.Pt(-4, 4), Up: false},
			{Slot: 300, P: lattice.Pt(2, 2), Up: true},
		},
	})
	if err != nil {
		log.Fatalf("churn: simulator: %v", err)
	}
	fmt.Printf("simulator (%d sensors, saturated, %d churn events): delivery %.3f, %d failed tx, %d collisions\n",
		simW.Size(), sim.NodesLeft+sim.NodesJoined, sim.DeliveryRatio(), sim.FailedTx, sim.ReceiverCollisions)
	if sim.FailedTx != 0 {
		log.Fatal("churn: the tiling schedule collided under churn — that would falsify Theorem 1's subset closure")
	}
	fmt.Println("the schedule survived churn untouched: no rescheduling, no collisions.")
}

// describe renders a batch for the demo table.
func describe(evs []dynamic.Event) string {
	out := ""
	for i, ev := range evs {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%s %s", ev.Kind, ev.P)
		if ev.Kind == dynamic.Move {
			out += fmt.Sprintf("→%s", ev.To)
		}
	}
	if len(out) > 44 {
		out = out[:41] + "..."
	}
	return out
}
