// Hexagonal monitoring grid: sensors on the hexagonal lattice of the
// paper's Figure 1 (right), with the 7-point Euclidean unit ball as the
// interference neighborhood. The example finds the 7-slot tiling schedule
// (the classic hexagonal frequency-reuse pattern), verifies it, and prints
// the Voronoi geometry from Figure 4.
//
// Run with:
//
//	go run ./examples/hexgrid
package main

import (
	"fmt"
	"log"
	"math"

	"tilingsched/internal/core"
	"tilingsched/internal/geom"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func main() {
	hex := lattice.Hexagonal()
	// Interference reaches every lattice point within Euclidean
	// distance 1: the center plus its 6 nearest neighbors.
	ball := prototile.EuclideanBall(hex, 1)
	fmt.Printf("hexagonal lattice, interference ball |N| = %d\n", ball.Size())

	plan, err := core.NewPlan(hex, ball)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal schedule: %d slots, period %s\n\n", plan.Slots(), plan.Tiling().Period())

	if err := plan.Verify(lattice.CenteredWindow(2, 5)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified collision-free on an 11×11 coordinate window")

	// The 7-slot pattern in lattice coordinates: the hexagonal reuse-7
	// pattern familiar from cellular planning.
	fmt.Println("\nslot assignment (coordinate patch, 1-based):")
	for y := 3; y >= -3; y-- {
		for x := -3; x <= 3; x++ {
			k, err := plan.SlotOf(lattice.Pt(x, y))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2d", k+1)
		}
		fmt.Println()
	}

	// Figure 4: the Voronoi cell of the hexagonal lattice is a regular
	// hexagon of Euclidean area √3/2.
	cell, err := geom.VoronoiCell(geom.HexGram(), 2)
	if err != nil {
		log.Fatal(err)
	}
	area := cell.Area().Float() * math.Sqrt(geom.HexGram().Det().Float())
	fmt.Printf("\nVoronoi cell: %d vertices, Euclidean area %.6f (√3/2 = %.6f)\n",
		len(cell.V), area, math.Sqrt(3)/2)

	// Energy framing from the paper's Introduction: every avoided
	// collision is an avoided retransmission.
	rep, err := plan.Optimality(lattice.CenteredWindow(2, 4), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimality: %d slots vs exact minimum %d (proven=%v)\n",
		rep.Slots, rep.Chromatic, rep.Proven)
}
