// Three-dimensional scheduling: the paper states its theorems for
// arbitrary dimensions, and underwater or airborne sensor swarms actually
// occupy 3-D lattices. This example schedules sensors on Z³ whose
// interference is the 7-point Lee sphere (center + 6 face neighbors),
// obtaining the provably optimal 7-slot schedule from a perfect Lee code.
//
// Run with:
//
//	go run ./examples/cube3d
package main

import (
	"fmt"
	"log"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/wsn"
)

func main() {
	ball := prototile.Cross(3, 1) // 7-point Lee sphere in Z³
	plan, err := core.NewPlan(lattice.Cubic(3), ball)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-D Lee sphere |N| = %d ⇒ %d-slot optimal schedule\n", ball.Size(), plan.Slots())
	fmt.Printf("period lattice (a perfect Lee code):\n%s\n\n", plan.Tiling().Period())

	// Slots in one z-layer; layers shift the pattern.
	for z := 0; z <= 1; z++ {
		fmt.Printf("slots at z=%d:\n", z)
		for y := 3; y >= -3; y-- {
			for x := -3; x <= 3; x++ {
				k, err := plan.SlotOf(lattice.Pt(x, y, z))
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%2d", k+1)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if err := plan.Verify(lattice.CenteredWindow(3, 3)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1/T2 and collision-freeness verified on [-3,3]³ (343 sensors)")

	// Exercise the same schedule in the simulator: a 5³ swarm under
	// saturation never collides and sustains one broadcast per 7 slots
	// per sensor.
	m, err := wsn.Run(wsn.Config{
		Window:     lattice.CenteredWindow(3, 2),
		Deployment: schedule.NewHomogeneous(ball),
		Protocol:   wsn.NewScheduleMAC("tiling3d", plan.Schedule()),
		Traffic:    wsn.Saturated{},
		Slots:      700,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator: %d sensors, %d slots: %d delivered, %d failed, energy/msg %.3f\n",
		m.Nodes, m.Slots, m.Delivered, m.FailedTx, m.EnergyPerDelivered())
	if m.FailedTx != 0 {
		log.Fatal("3-D tiling schedule collided — this should be impossible")
	}
}
